// Cluster quality metrics (paper §V.B, Figs. 6-7).
//
// Quality is judged against ground-truth RTTs: a cluster is *good* when
// its members sit closer to their own center than the center sits to other
// clusters' centers (average intra-cluster distance < average
// inter-cluster distance). The paper buckets good clusters by diameter
// (0-25 ms, 25-75 ms) and discards clusters wider than 75 ms as unlikely
// to be useful.
#pragma once

#include <functional>
#include <vector>

#include "core/clustering.hpp"

namespace crp {
class ThreadPool;
}

namespace crp::core {

/// Ground-truth distance callback: RTT in milliseconds between node
/// indices i and j (as used in the Clustering). `evaluate_clusters` may
/// invoke it from several threads concurrently, so it must be
/// thread-safe — true of the repo's distance sources (matrix lookups and
/// `LatencyOracle`, whose query paths are const + thread-local cache).
using DistanceFn = std::function<double(std::size_t, std::size_t)>;

struct ClusterQuality {
  std::size_t cluster_index = 0;
  std::size_t size = 0;
  /// Max pairwise member RTT.
  double diameter_ms = 0.0;
  /// Mean member-to-center RTT (0 for singletons).
  double avg_intra_ms = 0.0;
  /// Mean center-to-other-center RTT.
  double avg_inter_ms = 0.0;

  [[nodiscard]] bool good() const { return avg_inter_ms > avg_intra_ms; }
};

/// Evaluates every multi-member cluster. Inter-cluster distances are
/// measured against the centers of *all* other clusters (including
/// singleton clusters, which still have centers).
///
/// The O(members²) diameter scans run tiled on the pool (`pool` defaults
/// to `ThreadPool::shared()`; pass a 0-worker pool for inline execution).
/// Deterministic merge: each task writes only its own slot, per-cluster
/// distance *sums* stay sequential in the original order, and the
/// diameter is a max — exact under any reduction order — so the result
/// is bit-identical for every pool size.
[[nodiscard]] std::vector<ClusterQuality> evaluate_clusters(
    const Clustering& clustering, const DistanceFn& rtt_ms,
    ThreadPool* pool = nullptr);

/// Convenience filter: qualities with diameter < `max_diameter_ms`
/// (the paper uses 75 ms).
[[nodiscard]] std::vector<ClusterQuality> filter_by_diameter(
    std::vector<ClusterQuality> qualities, double max_diameter_ms);

/// Counts good clusters whose diameter falls in [lo, hi).
[[nodiscard]] std::size_t count_good_in_bucket(
    const std::vector<ClusterQuality>& qualities, double lo_ms,
    double hi_ms);

}  // namespace crp::core
