#include "service/position_service.hpp"

#include <gtest/gtest.h>

namespace crp::service {
namespace {

core::RatioMap map_of(std::vector<std::pair<ReplicaId, double>> entries) {
  return core::RatioMap::from_ratios(entries);
}

PositionReport report(const std::string& id,
                      std::vector<std::pair<ReplicaId, double>> entries,
                      SimTime when = SimTime::epoch()) {
  PositionReport r;
  r.node_id = id;
  r.when = when;
  r.map = map_of(std::move(entries));
  return r;
}

class PositionServiceTest : public ::testing::Test {
 protected:
  PositionServiceTest() {
    // Two groups: a/b/c around replicas {1,2}, d/e around {8,9}.
    const SimTime t0 = SimTime::epoch();
    service_.publish(report("a", {{ReplicaId{1}, 0.7}, {ReplicaId{2}, 0.3}},
                            t0),
                     t0);
    service_.publish(report("b", {{ReplicaId{1}, 0.6}, {ReplicaId{2}, 0.4}},
                            t0),
                     t0);
    service_.publish(report("c", {{ReplicaId{1}, 0.8}, {ReplicaId{2}, 0.2}},
                            t0),
                     t0);
    service_.publish(report("d", {{ReplicaId{8}, 0.5}, {ReplicaId{9}, 0.5}},
                            t0),
                     t0);
    service_.publish(report("e", {{ReplicaId{8}, 0.4}, {ReplicaId{9}, 0.6}},
                            t0),
                     t0);
  }

  PositionService service_;
};

TEST_F(PositionServiceTest, PublishAndInspect) {
  EXPECT_EQ(service_.size(), 5u);
  EXPECT_TRUE(service_.map_of("a").has_value());
  EXPECT_FALSE(service_.map_of("z").has_value());
  EXPECT_EQ(service_.live_nodes(SimTime::epoch()),
            (std::vector<std::string>{"a", "b", "c", "d", "e"}));
  EXPECT_EQ(service_.reports_accepted(), 5u);
}

TEST_F(PositionServiceTest, RejectsBadReports) {
  const SimTime now = SimTime::epoch();
  EXPECT_FALSE(service_.publish(report("", {{ReplicaId{1}, 1.0}}), now));
  EXPECT_FALSE(service_.publish(report("x", {}), now));  // empty map
  // Future-dated report.
  EXPECT_FALSE(service_.publish(
      report("x", {{ReplicaId{1}, 1.0}}, now + Hours(1)), now));
  // Stale on arrival.
  EXPECT_FALSE(service_.publish(report("x", {{ReplicaId{1}, 1.0}},
                                       SimTime::epoch()),
                                SimTime::epoch() + Hours(100)));
  EXPECT_EQ(service_.reports_rejected(), 4u);
}

TEST_F(PositionServiceTest, RejectsOutOfOrderOlderReport) {
  const SimTime later = SimTime::epoch() + Hours(1);
  ASSERT_TRUE(service_.publish(
      report("a", {{ReplicaId{5}, 1.0}}, later), later));
  // An older report for the same node must not clobber the newer one.
  EXPECT_FALSE(service_.publish(
      report("a", {{ReplicaId{6}, 1.0}}, SimTime::epoch()), later));
  EXPECT_TRUE(service_.map_of("a")->contains(ReplicaId{5}));
}

TEST_F(PositionServiceTest, NewerReportReplaces) {
  const SimTime later = SimTime::epoch() + Minutes(5);
  ASSERT_TRUE(service_.publish(
      report("a", {{ReplicaId{42}, 1.0}}, later), later));
  EXPECT_TRUE(service_.map_of("a")->contains(ReplicaId{42}));
  EXPECT_EQ(service_.size(), 5u);
}

TEST_F(PositionServiceTest, ClosestRanksBySimilarity) {
  const std::vector<std::string> candidates{"b", "c", "d", "e"};
  const auto ranked =
      service_.closest("a", candidates, 4, SimTime::epoch());
  ASSERT_EQ(ranked.size(), 4u);
  // c (0.8/0.2) is most similar to a (0.7/0.3); d/e share nothing.
  EXPECT_EQ(ranked[0].node_id, "c");
  EXPECT_DOUBLE_EQ(ranked[2].similarity, 0.0);
  EXPECT_DOUBLE_EQ(ranked[3].similarity, 0.0);
}

TEST_F(PositionServiceTest, ClosestSkipsSelfUnknownAndLimitsK) {
  const std::vector<std::string> candidates{"a", "b", "zz"};
  const auto ranked =
      service_.closest("a", candidates, 10, SimTime::epoch());
  ASSERT_EQ(ranked.size(), 1u);  // self and unknown dropped
  EXPECT_EQ(ranked[0].node_id, "b");
  EXPECT_TRUE(service_.closest("zz", candidates, 3, SimTime::epoch())
                  .empty());
}

TEST_F(PositionServiceTest, ClosestAnyUsesAllLiveNodes) {
  const auto ranked = service_.closest_any("a", 2, SimTime::epoch());
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].node_id, "c");
  EXPECT_EQ(ranked[1].node_id, "b");
}

TEST_F(PositionServiceTest, SameClusterQuery) {
  const auto mates = service_.same_cluster("a", SimTime::epoch());
  EXPECT_EQ(mates, (std::vector<std::string>{"b", "c"}));
  const auto other = service_.same_cluster("d", SimTime::epoch());
  EXPECT_EQ(other, (std::vector<std::string>{"e"}));
  EXPECT_TRUE(service_.same_cluster("zz", SimTime::epoch()).empty());
}

TEST_F(PositionServiceTest, ClusterAssignmentCoversLiveNodes) {
  const auto assignment = service_.cluster_assignment(SimTime::epoch());
  EXPECT_EQ(assignment.size(), 5u);
  EXPECT_EQ(assignment.at("a"), assignment.at("b"));
  EXPECT_NE(assignment.at("a"), assignment.at("d"));
}

TEST_F(PositionServiceTest, DiverseSetPicksAcrossClusters) {
  const auto set = service_.diverse_set(2, SimTime::epoch(), 1);
  ASSERT_EQ(set.size(), 2u);
  const auto assignment = service_.cluster_assignment(SimTime::epoch());
  EXPECT_NE(assignment.at(set[0]), assignment.at(set[1]));
  // Requesting more than there are clusters returns one per cluster.
  const auto all = service_.diverse_set(10, SimTime::epoch(), 1);
  EXPECT_EQ(all.size(), 2u);
}

TEST_F(PositionServiceTest, ClusteringCacheInvalidatedByPublish) {
  (void)service_.same_cluster("a", SimTime::epoch());
  // New node joins group 2.
  service_.publish(report("f", {{ReplicaId{8}, 0.45}, {ReplicaId{9}, 0.55}},
                          SimTime::epoch() + Minutes(1)),
                   SimTime::epoch() + Minutes(1));
  const auto mates =
      service_.same_cluster("d", SimTime::epoch() + Minutes(1));
  EXPECT_EQ(mates, (std::vector<std::string>{"e", "f"}));
}

TEST_F(PositionServiceTest, StaleReportsExpireAndDropFromQueries) {
  const SimTime later = SimTime::epoch() + Hours(7);  // staleness 6 h
  EXPECT_TRUE(service_.closest_any("a", 5, later).empty());  // all stale
  EXPECT_EQ(service_.expire(later), 5u);
  EXPECT_EQ(service_.size(), 0u);
}

TEST_F(PositionServiceTest, RemoveDropsNode) {
  service_.remove("a");
  EXPECT_EQ(service_.size(), 4u);
  EXPECT_FALSE(service_.map_of("a").has_value());
  service_.remove("a");  // idempotent
}

TEST_F(PositionServiceTest, PublishEncodedAcceptsWireAndRejectsJunk) {
  PositionReport r = report("wire-node", {{ReplicaId{1}, 1.0}},
                            SimTime::epoch());
  EXPECT_TRUE(service_.publish_encoded(encode(r), SimTime::epoch()));
  EXPECT_TRUE(service_.map_of("wire-node").has_value());
  EXPECT_FALSE(service_.publish_encoded("garbage", SimTime::epoch()));
}

TEST_F(PositionServiceTest, QueryCounterAdvances) {
  const auto before = service_.queries_served();
  (void)service_.closest_any("a", 1, SimTime::epoch());
  (void)service_.same_cluster("a", SimTime::epoch());
  (void)service_.diverse_set(1, SimTime::epoch());
  EXPECT_EQ(service_.queries_served(), before + 3);
}

}  // namespace
}  // namespace crp::service
