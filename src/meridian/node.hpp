// Meridian node state: concentric rings with diversity-maximizing
// membership (Wong, Slivkins & Sirer, SIGCOMM 2005).
//
// Each node organizes the peers it knows into exponentially growing
// latency rings: ring i holds peers whose RTT lies in
// [base * 2^(i-1), base * 2^i). Rings have bounded size; when a ring
// overflows, the node keeps the subset that maximizes pairwise latency
// diversity (a practical stand-in for the paper's polytope-hypervolume
// criterion). Diverse rings are what make the multi-hop search converge.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace crp::meridian {

struct RingConfig {
  int num_rings = 9;
  /// Outer RTT bound of the innermost ring (ms); ring i (0-based) covers
  /// [innermost_ms * 2^(i-1), innermost_ms * 2^i), with ring 0 starting
  /// at 0 and the outermost ring unbounded above.
  double innermost_ms = 2.0;
  /// Maximum members retained per ring.
  std::size_t ring_capacity = 8;
};

/// Health of a Meridian node; used for fault injection matching the
/// behaviours the paper observed on PlanetLab.
enum class NodeState {
  kNormal,
  /// Freshly (re)started: answers every query with itself (the
  /// planetlab1.cis.upenn.edu behaviour).
  kSelfishBootstrap,
  /// Only ever connected to its own site peers
  /// (planetlab[1,2].atcorp.com behaviour).
  kPartitioned,
  /// Never joined the overlay.
  kDead,
};

[[nodiscard]] const char* to_string(NodeState state);

/// Per-node ring membership. Latency measurements are supplied by the
/// overlay (the node itself is measurement-agnostic).
class MeridianNode {
 public:
  MeridianNode(HostId host, RingConfig config);

  [[nodiscard]] HostId host() const { return host_; }

  /// Ring index for an RTT (clamped to the outermost ring).
  [[nodiscard]] int ring_index(double rtt_ms) const;

  /// True if `peer` is already tracked.
  [[nodiscard]] bool knows(HostId peer) const;

  /// Records `peer` at measured distance `rtt_ms`. If the target ring is
  /// full the overlay must resolve the overflow via `resolve_overflow`;
  /// returns the ring index, or -1 when peer == self / already known.
  int insert(HostId peer, double rtt_ms);

  /// Called by the overlay when a ring exceeds capacity: keeps the
  /// `capacity` members maximizing summed pairwise distance, given the
  /// member-to-member RTT callback. Evicted members are forgotten.
  template <typename RttFn>
  void resolve_overflow(int ring, RttFn&& rtt_between) {
    auto& members = rings_[static_cast<std::size_t>(ring)];
    while (members.size() > config_.ring_capacity) {
      // Greedy: drop the member contributing least pairwise distance.
      std::size_t worst = 0;
      double worst_sum = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < members.size(); ++i) {
        double sum = 0.0;
        for (std::size_t j = 0; j < members.size(); ++j) {
          if (i != j) sum += rtt_between(members[i], members[j]);
        }
        if (sum < worst_sum) {
          worst_sum = sum;
          worst = i;
        }
      }
      forget(members[worst]);
    }
  }

  /// Drops a peer from whatever ring holds it (e.g. it died).
  void forget(HostId peer);

  /// Members of one ring.
  [[nodiscard]] const std::vector<HostId>& ring(int index) const {
    return rings_.at(static_cast<std::size_t>(index));
  }
  [[nodiscard]] int num_rings() const { return config_.num_rings; }

  /// All known peers across rings.
  [[nodiscard]] std::vector<HostId> all_peers() const;
  [[nodiscard]] std::size_t peer_count() const { return ring_of_.size(); }

  /// Peers whose *measured* ring placement is compatible with RTT range
  /// [lo_ms, hi_ms] — the candidate set for a query step.
  [[nodiscard]] std::vector<HostId> peers_in_range(double lo_ms,
                                                   double hi_ms) const;

  // --- fault state ---
  [[nodiscard]] NodeState state() const { return state_; }
  void set_state(NodeState state) { state_ = state; }
  [[nodiscard]] SimTime selfish_until() const { return selfish_until_; }
  void set_selfish_until(SimTime t) { selfish_until_ = t; }
  /// Effective state at time `t` (selfish bootstrap expires).
  [[nodiscard]] NodeState state_at(SimTime t) const;

 private:
  HostId host_;
  RingConfig config_;
  std::vector<std::vector<HostId>> rings_;
  std::unordered_map<HostId, int> ring_of_;
  NodeState state_ = NodeState::kNormal;
  SimTime selfish_until_ = SimTime::epoch();
};

}  // namespace crp::meridian
