#include "dns/resolver.hpp"

#include <algorithm>

namespace crp::dns {

RecursiveResolver::RecursiveResolver(HostId host, const ZoneRegistry& registry,
                                     const netsim::LatencyOracle* oracle,
                                     ResolverConfig config)
    : host_(host), registry_(&registry), oracle_(oracle), config_(config) {}

Ipv4 RecursiveResolver::address() const {
  if (oracle_ != nullptr) return oracle_->topology().host(host_).address();
  // Without a topology, synthesize the same 10/8 mapping hosts use.
  return Ipv4{(std::uint32_t{10} << 24) | (host_.value() & 0x00ffffffu)};
}

void RecursiveResolver::cache_store(const Name& name, RecordType type,
                                    std::vector<ResourceRecord> records,
                                    Rcode rcode, SimTime now) {
  if (config_.max_cache_entries == 0) return;
  if (cache_.size() >= config_.max_cache_entries) {
    // Pressure valve: drop everything expired; if still full, evict the
    // soonest-to-expire quarter (they carry the least future value) so
    // hot long-TTL records survive instead of losing the whole cache.
    std::erase_if(cache_,
                  [now](const auto& kv) { return kv.second.expires <= now; });
    if (cache_.size() >= config_.max_cache_entries) {
      const std::size_t keep =
          config_.max_cache_entries - 1 -
          std::min(config_.max_cache_entries - 1,
                   config_.max_cache_entries / 4);
      const std::size_t evict = cache_.size() - keep;
      std::vector<std::pair<SimTime, const CacheKey*>> by_expiry;
      by_expiry.reserve(cache_.size());
      for (const auto& [key, entry] : cache_) {
        by_expiry.emplace_back(entry.expires, &key);
      }
      std::nth_element(by_expiry.begin(),
                       by_expiry.begin() + static_cast<long>(evict) - 1,
                       by_expiry.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      std::vector<CacheKey> victims;
      victims.reserve(evict);
      for (std::size_t i = 0; i < evict; ++i) {
        victims.push_back(*by_expiry[i].second);
      }
      for (const CacheKey& victim : victims) cache_.erase(victim);
    }
  }
  Duration min_ttl = Hours(24);
  for (const ResourceRecord& rr : records) min_ttl = std::min(min_ttl, rr.ttl);
  if (records.empty()) min_ttl = Seconds(30);  // negative-cache TTL
  cache_[CacheKey{name, type}] =
      CacheEntry{std::move(records), rcode, now + min_ttl};
}

std::optional<std::vector<ResourceRecord>> RecursiveResolver::lookup(
    const Name& name, RecordType type, SimTime now, ResolveResult& result) {
  const CacheKey key{name, type};
  if (const auto it = cache_.find(key); it != cache_.end()) {
    if (it->second.expires > now) {
      ++cache_hits_;
      if (it->second.rcode != Rcode::kNoError) {
        result.rcode = it->second.rcode;
        return std::nullopt;
      }
      return it->second.records;
    }
    cache_.erase(it);
  }
  ++cache_misses_;

  AuthoritativeServer* const server = registry_->find(name);
  if (server == nullptr) {
    result.rcode = Rcode::kServFail;
    cache_store(name, type, {}, Rcode::kServFail, now);
    return std::nullopt;
  }

  const HostId upstream = server->host();
  const int attempts = std::max(1, config_.max_retries + 1);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      // Exponential backoff: wait retry_backoff * 2^(k-1) before retry k.
      result.elapsed +=
          config_.retry_backoff * static_cast<double>(1 << (attempt - 1));
    }
    ++queries_sent_;
    ++result.upstream_queries;
    if (attempt_lost(upstream, now, attempt)) {
      // The query (or its answer) never arrived: charge the timeout and
      // maybe retry. Fault losses are never negative-cached — the
      // outage must clear the instant the plan says so, not a TTL
      // later — and the lost attempt never reached the server, so it
      // adds resolver-side load but no authoritative-side load.
      result.elapsed += config_.query_timeout;
      continue;
    }
    if (oracle_ != nullptr && upstream.valid()) {
      result.elapsed += oracle_->rtt(host_, upstream, now);
    }
    result.elapsed += config_.processing_overhead;

    const Message reply =
        server->resolve(Question{name, type}, address(), now);
    if (reply.rcode != Rcode::kNoError) {
      result.rcode = reply.rcode;
      cache_store(name, type, {}, reply.rcode, now);
      return std::nullopt;
    }
    cache_store(name, type, reply.answers, Rcode::kNoError, now);
    return reply.answers;
  }
  // Every attempt lost: give up with SERVFAIL (uncached, see above).
  ++timeouts_;
  result.rcode = Rcode::kServFail;
  result.timed_out = true;
  return std::nullopt;
}

bool RecursiveResolver::attempt_lost(HostId upstream, SimTime now,
                                     int attempt) const {
  const auto a = static_cast<std::uint64_t>(attempt);
  if (faults_ != nullptr) {
    if (faults_->resolver_down(upstream, now)) return true;
    if (faults_->query_timed_out(host_, upstream, now, a)) return true;
  }
  if (oracle_ != nullptr && upstream.valid()) {
    if (oracle_->link_out(host_, upstream, now)) return true;
    if (oracle_->send_lost(host_, upstream, now, a)) return true;
  }
  return false;
}

ResolveResult RecursiveResolver::resolve(const Name& name, SimTime now) {
  ResolveResult result;
  result.rcode = Rcode::kNoError;

  // Resolver-host outage: the resolver itself is down, so the client's
  // query times out before any upstream work happens.
  if (faults_ != nullptr && faults_->resolver_down(host_, now)) {
    ++outage_refusals_;
    result.rcode = Rcode::kServFail;
    result.timed_out = true;
    result.elapsed += config_.query_timeout;
    return result;
  }

  Name current = name;
  for (int depth = 0; depth <= config_.max_chain; ++depth) {
    auto records = lookup(current, RecordType::kA, now, result);
    if (!records.has_value()) {
      // rcode already set by lookup
      if (result.rcode == Rcode::kNoError) result.rcode = Rcode::kServFail;
      return result;
    }

    // Collect A answers; follow at most one CNAME per step.
    std::optional<Name> next;
    for (ResourceRecord& rr : *records) {
      if (rr.type == RecordType::kA) {
        result.addresses.push_back(rr.address);
        result.chain.push_back(std::move(rr));
      } else if (rr.type == RecordType::kCname && !next.has_value()) {
        next = rr.target;
        result.chain.push_back(std::move(rr));
      }
    }
    if (!result.addresses.empty()) {
      return result;
    }
    if (!next.has_value()) {
      result.rcode = Rcode::kNxDomain;
      return result;
    }
    current = std::move(*next);
  }
  result.rcode = Rcode::kServFail;  // CNAME chain too long / loop
  return result;
}

}  // namespace crp::dns
