file(REMOVE_RECURSE
  "../bench/ablation_redirection"
  "../bench/ablation_redirection.pdb"
  "CMakeFiles/ablation_redirection.dir/ablation_redirection.cpp.o"
  "CMakeFiles/ablation_redirection.dir/ablation_redirection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_redirection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
