// Minimal IPv4 address value type.
//
// The DNS substrate answers A queries and the CDN hands out replica
// addresses; a real 32-bit address type keeps that interface faithful
// without pulling in OS networking headers.
#pragma once

#include <compare>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

namespace crp {

class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t addr) : addr_(addr) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d)
      : addr_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return addr_; }
  constexpr auto operator<=>(const Ipv4&) const = default;

  [[nodiscard]] std::string to_string() const {
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr_ >> 24) & 0xff,
                  (addr_ >> 16) & 0xff, (addr_ >> 8) & 0xff, addr_ & 0xff);
    return std::string{buf};
  }

 private:
  std::uint32_t addr_ = 0;
};

}  // namespace crp

namespace std {
template <>
struct hash<crp::Ipv4> {
  size_t operator()(const crp::Ipv4& ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value());
  }
};
}  // namespace std
