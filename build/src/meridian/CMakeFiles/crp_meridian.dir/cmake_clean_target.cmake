file(REMOVE_RECURSE
  "libcrp_meridian.a"
)
