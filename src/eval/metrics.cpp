#include "eval/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "core/similarity_engine.hpp"

namespace crp::eval {

std::vector<SelectionOutcome> evaluate_crp_selection(
    const GroundTruthMatrix& gt, std::span<const core::RatioMap> client_maps,
    std::span<const core::RatioMap> candidate_maps, std::size_t top_k,
    core::SimilarityKind kind) {
  if (client_maps.size() != gt.num_clients() ||
      candidate_maps.size() != gt.num_candidates()) {
    throw std::invalid_argument{"evaluate_crp_selection: size mismatch"};
  }
  if (top_k == 0) top_k = 1;

  // One engine over the candidate corpus serves every client's query via
  // the tiled multi-query kernel: every client of a tile shares one pass
  // over the candidate posting lists. Rankings are bit-identical to
  // per-client `select_top_k` (DESIGN.md §6 "Batched query execution"),
  // and outcomes are per-client slots, so the result stays
  // thread-count independent.
  const core::SimilarityEngine engine{candidate_maps, kind};
  const auto ranked_all = engine.topk_batch(client_maps, top_k);
  std::vector<SelectionOutcome> outcomes(client_maps.size());
  ThreadPool::shared().parallel_for(
      0, client_maps.size(), [&](std::size_t c) {
        const auto& ranked = ranked_all[c];
        SelectionOutcome outcome;
        outcome.client = c;
        outcome.selected = ranked.empty() ? 0 : ranked.front().index;
        outcome.comparable =
            !ranked.empty() && ranked.front().similarity > 0.0;

        double rtt_sum = 0.0;
        double rank_sum = 0.0;
        std::size_t counted = 0;
        for (const core::RankedCandidate& rc : ranked) {
          rtt_sum += gt.rtt_ms(c, rc.index);
          rank_sum += static_cast<double>(gt.rank_of(c, rc.index));
          ++counted;
        }
        if (counted > 0) {
          outcome.rtt_ms = rtt_sum / static_cast<double>(counted);
          outcome.rank = rank_sum / static_cast<double>(counted);
          outcome.relative_error_ms = outcome.rtt_ms - gt.optimal_rtt_ms(c);
        }
        outcomes[c] = outcome;
      });
  return outcomes;
}

std::vector<SelectionOutcome> evaluate_fixed_selection(
    const GroundTruthMatrix& gt, std::span<const std::size_t> selected) {
  if (selected.size() != gt.num_clients()) {
    throw std::invalid_argument{"evaluate_fixed_selection: size mismatch"};
  }
  std::vector<SelectionOutcome> outcomes;
  outcomes.reserve(selected.size());
  for (std::size_t c = 0; c < selected.size(); ++c) {
    SelectionOutcome outcome;
    outcome.client = c;
    outcome.selected = selected[c];
    outcome.rtt_ms = gt.rtt_ms(c, selected[c]);
    outcome.rank = static_cast<double>(gt.rank_of(c, selected[c]));
    outcome.relative_error_ms = outcome.rtt_ms - gt.optimal_rtt_ms(c);
    outcomes.push_back(outcome);
  }
  return outcomes;
}

namespace {
template <typename Getter>
std::vector<double> extract(std::span<const SelectionOutcome> outcomes,
                            bool comparable_only, Getter get) {
  std::vector<double> out;
  out.reserve(outcomes.size());
  for (const SelectionOutcome& o : outcomes) {
    if (comparable_only && !o.comparable) continue;
    out.push_back(get(o));
  }
  return out;
}
}  // namespace

std::vector<double> rtts_of(std::span<const SelectionOutcome> outcomes,
                            bool comparable_only) {
  return extract(outcomes, comparable_only,
                 [](const SelectionOutcome& o) { return o.rtt_ms; });
}

std::vector<double> ranks_of(std::span<const SelectionOutcome> outcomes,
                             bool comparable_only) {
  return extract(outcomes, comparable_only,
                 [](const SelectionOutcome& o) { return o.rank; });
}

std::vector<double> relative_errors_of(
    std::span<const SelectionOutcome> outcomes, bool comparable_only) {
  return extract(outcomes, comparable_only, [](const SelectionOutcome& o) {
    return o.relative_error_ms;
  });
}

double fraction_within(std::span<const double> a, std::span<const double> b,
                       double eps) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) <= eps) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(a.size());
}

double fraction_better(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(a.size());
}

double fraction_ratio_above(std::span<const double> a,
                            std::span<const double> b, double factor) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > factor * b[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(a.size());
}

}  // namespace crp::eval
