// Shared harness for the figure/table benches.
//
// `SelectionExperiment` reproduces the paper's closest-node-selection
// setup (§V.A): a world with PlanetLab-like candidate servers and
// DNS-server clients, a probing campaign, CRP ratio maps for everyone, a
// Meridian overlay over the candidates, and direct-measurement ground
// truth. Figs. 4, 5, 8, 9 and the ablations all start from here.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/history.hpp"
#include "core/ratio_map.hpp"
#include "eval/ground_truth.hpp"
#include "eval/metrics.hpp"
#include "eval/world.hpp"
#include "meridian/overlay.hpp"
#include "service/position_service.hpp"
#include "service/sharded_frontend.hpp"

namespace crp::bench {

/// Scale knobs honoured by every bench: CRP_BENCH_SCALE=small shrinks the
/// experiment for quick runs, =tiny to a CI smoke size; full (default)
/// reproduces the paper's population.
struct Scale {
  std::size_t candidates = 240;
  std::size_t dns_servers = 1000;
  std::size_t replicas = 400;
  Duration campaign = Hours(24);
  Duration probe_interval = Minutes(10);

  static Scale from_env() {
    Scale scale;
    const char* env = std::getenv("CRP_BENCH_SCALE");
    const std::string value = env == nullptr ? "" : env;
    if (value == "small") {
      scale.candidates = 60;
      scale.dns_servers = 150;
      scale.replicas = 200;
      scale.campaign = Hours(12);
    } else if (value == "tiny") {
      scale.candidates = 20;
      scale.dns_servers = 40;
      scale.replicas = 120;
      scale.campaign = Hours(4);
      scale.probe_interval = Minutes(30);
    }
    return scale;
  }
};

/// Parses a `--shards=N` / `--shards N` flag out of argv. Returns 0 when
/// absent (bench keeps its unsharded serving path); N>=1 asks the bench
/// to also run its serving block through a ShardedFrontend of N shards
/// and digest-check it against the unsharded answers.
inline std::size_t parse_shards(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--shards=", 0) == 0) {
      return static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 9, nullptr, 10));
    }
    if (arg == "--shards" && i + 1 < argc) {
      return static_cast<std::size_t>(
          std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  return 0;
}

/// FNV-1a digest of a batched ranked answer set (ids plus similarity bit
/// patterns) — the serving-path equality check the --shards flag runs:
/// sharded answers must be bit-identical to unsharded ones.
inline std::uint64_t ranked_digest(
    const std::vector<std::vector<service::RankedNode>>& answers) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  for (const auto& ranked : answers) {
    const std::size_t n = ranked.size();
    mix(&n, sizeof(n));
    for (const auto& node : ranked) {
      mix(node.node_id.data(), node.node_id.size());
      mix(&node.similarity, sizeof(node.similarity));
    }
  }
  return h;
}

/// Per-shard + aggregate serving-stats banner (stderr). For an unsharded
/// service pass its single stats entry; the aggregate line then repeats
/// it.
inline void print_service_stats(
    const std::vector<service::ServiceStats>& per_shard) {
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    const auto& st = per_shard[s];
    std::fprintf(stderr,
                 "[serving]   shard %zu: %llu queries, %llu sim queries "
                 "(%llu maps), %llu/%llu reports accepted/rejected, "
                 "epoch lag %llu (max %llu)\n",
                 s, static_cast<unsigned long long>(st.queries_served),
                 static_cast<unsigned long long>(st.similarity_queries),
                 static_cast<unsigned long long>(st.maps_touched),
                 static_cast<unsigned long long>(st.reports_accepted),
                 static_cast<unsigned long long>(st.reports_rejected),
                 static_cast<unsigned long long>(st.epoch_lag_last),
                 static_cast<unsigned long long>(st.epoch_lag_max));
  }
  const service::ServiceStats total = service::aggregate_stats(per_shard);
  std::fprintf(stderr,
               "[serving] aggregate: %llu queries (%llu fresh, %llu stale, "
               "%llu refused), %llu sim queries (%llu maps), "
               "%llu/%llu reports accepted/rejected, "
               "%llu routing-rejected, epoch lag %llu (max %llu)\n",
               static_cast<unsigned long long>(total.queries_served),
               static_cast<unsigned long long>(total.fresh_answers),
               static_cast<unsigned long long>(total.stale_answers),
               static_cast<unsigned long long>(total.refused_queries),
               static_cast<unsigned long long>(total.similarity_queries),
               static_cast<unsigned long long>(total.maps_touched),
               static_cast<unsigned long long>(total.reports_accepted),
               static_cast<unsigned long long>(total.reports_rejected),
               static_cast<unsigned long long>(total.routing_rejected),
               static_cast<unsigned long long>(total.epoch_lag_last),
               static_cast<unsigned long long>(total.epoch_lag_max));
}

/// Frontend fault-handling banner (all zeros unless a plan was armed).
inline void print_health_stats(const service::FrontendHealthStats& hs) {
  std::fprintf(
      stderr,
      "[faults] breakers: %llu opened, %llu half-opened, %llu closed; "
      "writes: %llu retries, %llu failed, %llu shed; "
      "crashes: %llu (%llu reports replayed); "
      "serving: %llu fallback views, %llu degraded, %llu partial\n",
      static_cast<unsigned long long>(hs.breaker_opens),
      static_cast<unsigned long long>(hs.breaker_half_opens),
      static_cast<unsigned long long>(hs.breaker_closes),
      static_cast<unsigned long long>(hs.write_retries),
      static_cast<unsigned long long>(hs.writes_failed),
      static_cast<unsigned long long>(hs.writes_shed),
      static_cast<unsigned long long>(hs.shard_crashes),
      static_cast<unsigned long long>(hs.recovery_replays),
      static_cast<unsigned long long>(hs.stale_fallback_views),
      static_cast<unsigned long long>(hs.degraded_answers),
      static_cast<unsigned long long>(hs.partial_answers));
}

/// One-line campaign cost banner (stderr, like the other progress lines).
inline void print_campaign_stats(const eval::CampaignStats& stats) {
  std::fprintf(
      stderr,
      "[campaign] %zu nodes x %zu rounds: %zu probes in %.2f s "
      "(%.0f probes/s, %zu threads); resolver hit rate %.1f%%, "
      "%zu upstream DNS queries, %zu CDN queries, "
      "oracle pair-cache hit rate %.1f%%\n",
      stats.participants, stats.rounds, stats.probes_issued,
      stats.wall_seconds, stats.probes_per_second(), stats.threads,
      100.0 * stats.resolver_hit_rate(), stats.upstream_dns_queries,
      stats.cdn_queries, 100.0 * stats.oracle_pair_hit_rate());
}

struct SelectionExperiment {
  /// `patch` may adjust the world config before construction (e.g.
  /// concentrate candidates in a few regions).
  explicit SelectionExperiment(
      std::uint64_t seed, Scale scale = {},
      eval::PolicyKind policy = eval::PolicyKind::kLatencyDriven,
      const std::function<void(eval::WorldConfig&)>& patch = nullptr) {
    eval::WorldConfig config;
    config.seed = seed;
    config.num_candidates = scale.candidates;
    config.num_dns_servers = scale.dns_servers;
    config.cdn.target_replicas = scale.replicas;
    config.policy_kind = policy;
    if (patch) patch(config);

    std::fprintf(stderr, "[world] building (%zu candidates, %zu clients, "
                         "%zu replicas)...\n",
                 scale.candidates, scale.dns_servers, scale.replicas);
    world = std::make_unique<eval::World>(config);

    std::fprintf(stderr, "[world] probing %.0f h campaign at %.0f min "
                         "intervals...\n",
                 (scale.campaign).seconds() / 3600.0,
                 scale.probe_interval.minutes());
    rounds = world->run_probing(SimTime::epoch(),
                                SimTime::epoch() + scale.campaign,
                                scale.probe_interval);
    print_campaign_stats(world->campaign_stats());

    for (HostId h : world->dns_servers()) {
      client_maps.push_back(world->crp_node(h).ratio_map());
    }
    for (HostId h : world->candidates()) {
      candidate_maps.push_back(world->crp_node(h).ratio_map());
    }

    std::fprintf(stderr, "[world] measuring ground truth...\n");
    gt = std::make_unique<eval::GroundTruthMatrix>(
        *world, world->dns_servers(), world->candidates());
  }

  /// Runs the Meridian baseline over the candidates and returns each
  /// client's selected candidate index. `faults` defaults to the paper's
  /// observed PlanetLab pathology mix.
  std::vector<std::size_t> run_meridian(
      meridian::FaultSpec faults = paper_faults()) {
    std::fprintf(stderr, "[meridian] bootstrapping overlay...\n");
    meridian::MeridianConfig config;
    config.seed = world->config().seed + 1;
    overlay = std::make_unique<meridian::MeridianOverlay>(
        world->oracle(),
        std::vector<HostId>{world->candidates().begin(),
                            world->candidates().end()},
        config, faults);
    overlay->bootstrap(SimTime::epoch());

    std::fprintf(stderr, "[meridian] answering %zu queries...\n",
                 world->dns_servers().size());
    std::vector<std::size_t> choice;
    Rng rng{world->config().seed + 2};
    const SimTime query_time = world->campaign_end();
    for (HostId client : world->dns_servers()) {
      const auto result =
          overlay->closest_node(overlay->random_entry(rng), client,
                                query_time);
      const auto it = std::find(world->candidates().begin(),
                                world->candidates().end(), result.selected);
      choice.push_back(static_cast<std::size_t>(
          it - world->candidates().begin()));
    }
    return choice;
  }

  /// Fault mix matching §V.A's observations: restarted nodes answering
  /// with themselves, a few that never joined, a couple of partitioned
  /// sites.
  static meridian::FaultSpec paper_faults() {
    meridian::FaultSpec faults;
    faults.selfish_fraction = 0.03;
    faults.selfish_duration = Hours(17);  // 10 h mute + 7 h selfish
    faults.dead_fraction = 0.02;
    faults.partitioned_fraction = 0.03;
    return faults;
  }

  std::unique_ptr<eval::World> world;
  std::unique_ptr<eval::GroundTruthMatrix> gt;
  std::unique_ptr<meridian::MeridianOverlay> overlay;
  std::vector<core::RatioMap> client_maps;
  std::vector<core::RatioMap> candidate_maps;
  std::size_t rounds = 0;
};

}  // namespace crp::bench
