// The stand-alone CRP positioning service the paper leaves as future
// work (§III.B): a shared registry of position reports answering the
// three location queries of §IV.B plus closest-node selection (§IV.A),
// for any application, with no probing anywhere.
//
// Semantics:
//  * Nodes publish `PositionReport`s (ratio map + timestamp); newer
//    reports replace older ones, stale reports expire.
//  * `closest` ranks candidate nodes by similarity to a client node.
//  * Cluster queries run SMF lazily over the engine corpus and cache the
//    result until the membership changes or the cache ages out. Stale
//    members are filtered out of every answer at query time, so a cached
//    clustering never serves nodes whose reports have aged past the
//    staleness bound.
//
// Serving machinery: the service keeps one incrementally maintained
// `core::SimilarityEngine` (DESIGN.md §6) as the source of truth for
// similarity. publish/remove/expire mutate the engine in place
// (add/update/remove with tombstones + compaction) instead of rebuilding
// a corpus copy; `closest`/`closest_any` answer from one engine query
// per request, and `ensure_clustering` feeds `smf_cluster` straight from
// the engine without recopying a single map. Engine scores are
// bit-identical to per-pair `similarity()` (the §6 determinism
// contract), so query answers are byte-for-byte what the naive per-pair
// implementation produced.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sharded_counter.hpp"
#include "common/time.hpp"
#include "core/clustering.hpp"
#include "core/ratio_map.hpp"
#include "core/similarity.hpp"
#include "core/similarity_engine.hpp"
#include "service/wire.hpp"

namespace crp {
class ThreadPool;
}

namespace crp::service {

struct ServiceConfig {
  /// Reports older than this are ignored and eventually dropped.
  Duration staleness_bound = Hours(6);
  /// Degraded-mode serving (DESIGN.md §7): reports older than
  /// `staleness_bound` but within this bound may still answer *tiered*
  /// queries, marked `AnswerTier::kStale`. Must exceed
  /// `staleness_bound` to have any effect; the default 0 disables the
  /// stale tier entirely, leaving every non-tiered query byte-for-byte
  /// what it always was.
  Duration stale_usable_bound = Duration{0};
  /// Similarity metric for every query the service answers — selection
  /// and clustering share the one engine, so `clustering.metric` is
  /// overridden with this value at construction.
  core::SimilarityKind metric = core::SimilarityKind::kCosine;
  /// SMF settings for the cluster queries.
  core::SmfConfig clustering;
  /// Cached clustering is recomputed after this long, or whenever the
  /// set of known nodes changes.
  Duration recluster_after = Minutes(30);
};

/// A similarity-ranked peer.
struct RankedNode {
  std::string node_id;
  double similarity = 0.0;
};

/// Which freshness tier a tiered query answered from.
enum class AnswerTier : std::uint8_t {
  kFresh,    // client and candidates within staleness_bound
  kStale,    // answered from stale-but-usable reports (degraded mode)
  kRefused,  // no usable answer; see DegradedReason
};

/// Why a tiered query degraded below the fresh tier or refused. Typed so
/// callers can distinguish "ask again later" from "this node is gone" —
/// instead of every failure collapsing into a silent empty vector.
enum class DegradedReason : std::uint8_t {
  kNone,               // fresh answer, nothing degraded
  kUnknownClient,      // client never published a report
  kClientExpired,      // client's report aged past even the stale tier
  kStaleClient,        // answered, but from a stale-tier client report
  kNoUsableCandidates, // client usable but nothing to rank against
};

[[nodiscard]] const char* to_string(AnswerTier tier);
[[nodiscard]] const char* to_string(DegradedReason reason);

/// Result of a tiered closest query: the ranking plus an explicit
/// account of how degraded the answer is.
struct TieredAnswer {
  AnswerTier tier = AnswerTier::kRefused;
  DegradedReason reason = DegradedReason::kNone;
  std::vector<RankedNode> ranked;

  [[nodiscard]] bool answered() const {
    return tier != AnswerTier::kRefused;
  }
};

/// Serving counters, cumulative since construction (see stats()).
struct ServiceStats {
  std::uint64_t queries_served = 0;
  std::uint64_t reports_accepted = 0;
  std::uint64_t reports_rejected = 0;
  /// Cluster queries answered from the cached clustering.
  std::uint64_t clustering_cache_hits = 0;
  /// Reclusterings that reused the incrementally maintained engine —
  /// each one is a from-scratch corpus copy + engine build avoided.
  std::uint64_t engine_rebuilds_avoided = 0;
  /// Engine churn (mirrors SimilarityEngine::MutationStats).
  std::uint64_t postings_tombstoned = 0;
  std::uint64_t compactions = 0;
  /// Similarity queries answered and the corpus maps they touched
  /// (shared ≥1 replica with the client) — touched/query is the
  /// effective fan-out of the engine's inverted index.
  std::uint64_t similarity_queries = 0;
  std::uint64_t maps_touched = 0;
  /// Clustering rebuilds actually executed (cache misses), the wall
  /// time they took in total, and the candidate rows the center-indexed
  /// SMF touched while doing so — touched/(nodes·rebuild) versus the
  /// corpus size is the clustering speedup the center index delivers.
  std::uint64_t reclusters = 0;
  double recluster_seconds = 0.0;
  std::uint64_t recluster_maps_touched = 0;
  /// Degraded-mode serving outcomes (tiered queries only; the plain
  /// query paths never touch these).
  std::uint64_t fresh_answers = 0;
  std::uint64_t stale_answers = 0;
  std::uint64_t refused_queries = 0;
};

class PositionService {
 public:
  explicit PositionService(ServiceConfig config = {});

  // --- publication ---
  /// Registers/updates a node's position. Reports older than the one
  /// already held (or stale on arrival) are rejected; returns whether
  /// the report was accepted.
  bool publish(PositionReport report, SimTime now);
  /// Convenience: publish straight from wire bytes.
  bool publish_encoded(std::string_view bytes, SimTime now);
  /// Publishes a batch of wire-encoded reports: decoding (which is pure)
  /// runs in parallel on `pool`, engine mutations then apply
  /// sequentially in batch order — the end state is identical to calling
  /// publish_encoded element by element. Malformed entries are rejected
  /// individually and never affect their neighbours. Returns how many
  /// reports were accepted.
  std::size_t publish_batch(std::span<const std::string> batch, SimTime now,
                            ThreadPool* pool = nullptr);
  /// Removes a node entirely. Returns whether it was known (and hence
  /// actually dropped).
  bool remove(const std::string& node_id);

  // --- inspection ---
  [[nodiscard]] std::optional<core::RatioMap> map_of(
      const std::string& node_id) const;
  /// Full stored report including its original timestamp (what gossip
  /// forwards — provenance must survive multi-hop distribution).
  [[nodiscard]] std::optional<PositionReport> report_of(
      const std::string& node_id) const;
  [[nodiscard]] std::size_t size() const { return reports_.size(); }
  /// Nodes with non-stale reports at `now`, in lexicographic order.
  /// The sortedness is a contract, not an implementation detail:
  /// GossipMesh::coverage binary-searches the result (and asserts the
  /// order). Keep it sorted.
  [[nodiscard]] std::vector<std::string> live_nodes(SimTime now) const;

  // --- §IV.A closest-node selection ---
  /// Ranks `candidates` (live, known) by similarity to `client`, best
  /// first, at most k entries. Unknown/stale candidates are skipped;
  /// unknown client yields empty.
  [[nodiscard]] std::vector<RankedNode> closest(
      const std::string& client, std::span<const std::string> candidates,
      std::size_t k, SimTime now) const;
  /// Same, but over every live node except the client.
  [[nodiscard]] std::vector<RankedNode> closest_any(
      const std::string& client, std::size_t k, SimTime now) const;

  // --- degraded-mode serving (DESIGN.md §7) ---
  /// `closest_any` with explicit staleness tiers: a fresh client ranks
  /// live candidates (identical content to `closest_any`); a client in
  /// the stale-but-usable band ranks candidates usable at that band and
  /// the answer is marked kStale; otherwise the query *refuses* with a
  /// typed reason instead of silently returning empty. With the stale
  /// tier disabled (default config) only kFresh/kRefused occur.
  [[nodiscard]] TieredAnswer closest_any_tiered(const std::string& client,
                                                std::size_t k,
                                                SimTime now) const;
  /// Candidate-list variant of `closest_any_tiered`; the fresh tier
  /// ranks exactly what `closest` would.
  [[nodiscard]] TieredAnswer closest_tiered(
      const std::string& client, std::span<const std::string> candidates,
      std::size_t k, SimTime now) const;

  // --- batched serving (DESIGN.md §6 "Batched query execution") ---
  /// `closest_any` for a whole batch of clients in one pass: result `i`
  /// is bit-identical to `closest_any(clients[i], k, now)`. The
  /// liveness snapshot is taken once and shared by every query — the
  /// whole batch answers against one consistent membership view — the
  /// engine runs its tiled multi-query kernel over the clients' corpus
  /// rows, and the serving counters are updated once for the batch.
  [[nodiscard]] std::vector<std::vector<RankedNode>> closest_batch(
      std::span<const std::string> clients, std::size_t k, SimTime now,
      ThreadPool* pool = nullptr) const;
  /// Candidate-list variant: result `i` is bit-identical to
  /// `closest(clients[i], candidates, k, now)`. The candidate set is
  /// vetted (known + live) once for the batch.
  [[nodiscard]] std::vector<std::vector<RankedNode>> closest_batch(
      std::span<const std::string> clients,
      std::span<const std::string> candidates, std::size_t k, SimTime now,
      ThreadPool* pool = nullptr) const;

  // --- §IV.B clustering queries ---
  /// Query 1: live nodes in the same cluster as `node_id` (excluding
  /// it). Empty if `node_id` is unknown or stale at `now`.
  [[nodiscard]] std::vector<std::string> same_cluster(
      const std::string& node_id, SimTime now);
  /// Query 2: cluster index for every live node. Indices are
  /// engine-internal — meaningful for equality comparisons only.
  [[nodiscard]] std::unordered_map<std::string, std::size_t>
  cluster_assignment(SimTime now);
  /// Query 3: up to n live nodes, pairwise in different clusters (for
  /// failure-independent peer sets). Deterministic given the seed.
  [[nodiscard]] std::vector<std::string> diverse_set(std::size_t n,
                                                     SimTime now,
                                                     std::uint64_t seed = 0);

  // --- maintenance & stats ---
  /// Drops reports no longer usable at `now` — older than the stale
  /// tier's bound when it is enabled, else older than the staleness
  /// bound (the historical behavior). Returns how many were removed.
  std::size_t expire(SimTime now);
  [[nodiscard]] std::uint64_t queries_served() const {
    return queries_served_.total();
  }
  [[nodiscard]] std::uint64_t reports_accepted() const {
    return reports_accepted_;
  }
  [[nodiscard]] std::uint64_t reports_rejected() const {
    return reports_rejected_;
  }
  /// Snapshot of all serving counters, engine churn included.
  [[nodiscard]] ServiceStats stats() const;
  /// The engine slots currently backing the corpus (live + tombstoned);
  /// exposed for tests and capacity monitoring.
  [[nodiscard]] std::size_t engine_slots() const { return engine_.size(); }

 private:
  [[nodiscard]] bool is_live(const PositionReport& report,
                             SimTime now) const;
  [[nodiscard]] bool is_live_id(const std::string& node_id,
                                SimTime now) const;
  /// Is the report in the stale-but-usable band (older than the
  /// staleness bound, within the stale tier)? Always false when the
  /// stale tier is disabled.
  [[nodiscard]] bool is_stale_usable(const PositionReport& report,
                                     SimTime now) const;
  /// Age bound past which a report is useless even for degraded
  /// serving (= staleness_bound unless the stale tier extends it).
  [[nodiscard]] Duration usable_bound() const;
  /// Shared core of the tiered queries: `candidates` empty means "every
  /// known node" (the closest_any form).
  [[nodiscard]] TieredAnswer tiered_query(
      const std::string& client, std::span<const std::string> candidates,
      bool any, std::size_t k, SimTime now) const;
  /// Erases one node from the report map, the engine, and the slot maps.
  /// Returns whether the node was known. The membership epoch is bumped
  /// only on an actual drop — an unknown id is a no-op and must not
  /// invalidate the cached clustering.
  bool drop_node(const std::string& node_id);
  /// One entry of a batch's shared liveness snapshot: a live node and
  /// its engine slot. The pointed-to id lives in reports_ (or the
  /// caller's candidate span) and outlives the query.
  struct SnapshotNode {
    const std::string* id = nullptr;
    std::size_t slot = 0;
  };
  /// Ranks `snapshot` (minus the client itself) for one client of a
  /// batch from its dense score row, with the (similarity desc, node_id
  /// asc) total order shared by every closest path.
  [[nodiscard]] std::vector<RankedNode> rank_snapshot(
      std::span<const SnapshotNode> snapshot, std::size_t client_slot,
      std::span<const double> scores, std::size_t k) const;
  /// One engine query for `client_slot`'s similarity to the whole
  /// corpus, with stats accounting. `out` must have engine_.size() slots.
  void similarity_scores(std::size_t client_slot,
                         std::span<double> out) const;
  /// Recomputes the cached clustering if membership changed or the cache
  /// aged out. The clustering covers every engine row (stale-but-known
  /// nodes included); answers filter liveness afterwards.
  void ensure_clustering(SimTime now);

  ServiceConfig config_;
  std::unordered_map<std::string, PositionReport> reports_;

  // The similarity corpus. node_at_[slot] is the node occupying an
  // engine row ("" for tombstoned rows); slot_of_ is the inverse.
  core::SimilarityEngine engine_;
  std::unordered_map<std::string, std::size_t> slot_of_;
  std::vector<std::string> node_at_;

  // Cached clustering over the engine corpus. The clusterer lives here
  // so its center/singleton index allocations survive across rebuilds.
  core::SmfClusterer clusterer_;
  core::Clustering clustering_;
  SimTime clustered_at_ = SimTime{-1};
  std::uint64_t membership_epoch_ = 0;   // bumped on publish/remove
  std::uint64_t clustered_epoch_ = ~0ULL;

  // Query-path counters (mutable: bumped through const query methods)
  // are thread-sharded so concurrent const queries never race on them —
  // a plain mutable uint64 here was a data race the moment two readers
  // overlapped. Write-path counters stay plain integers: mutations
  // require external quiescing anyway (see the engine's contract).
  mutable ShardedCounter queries_served_;
  std::uint64_t reports_accepted_ = 0;
  std::uint64_t reports_rejected_ = 0;
  std::uint64_t clustering_cache_hits_ = 0;
  std::uint64_t engine_rebuilds_avoided_ = 0;
  mutable ShardedCounter similarity_queries_;
  mutable ShardedCounter maps_touched_;
  mutable ShardedCounter fresh_answers_;
  mutable ShardedCounter stale_answers_;
  mutable ShardedCounter refused_queries_;
  std::uint64_t reclusters_ = 0;
  double recluster_seconds_ = 0.0;
  std::uint64_t recluster_maps_touched_ = 0;
};

}  // namespace crp::service
