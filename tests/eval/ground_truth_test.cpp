#include "eval/ground_truth.hpp"

#include <gtest/gtest.h>

namespace crp::eval {
namespace {

TEST(GroundTruthMatrix, FromExternalMatrix) {
  GroundTruthMatrix gt{{{30.0, 10.0, 20.0},
                        {5.0, 50.0, 25.0}}};
  EXPECT_EQ(gt.num_clients(), 2u);
  EXPECT_EQ(gt.num_candidates(), 3u);
  EXPECT_DOUBLE_EQ(gt.rtt_ms(0, 1), 10.0);
  // Client 0 order: candidate 1 (10), 2 (20), 0 (30).
  EXPECT_EQ(gt.order_for(0), (std::vector<std::size_t>{1, 2, 0}));
  EXPECT_EQ(gt.rank_of(0, 1), 0u);
  EXPECT_EQ(gt.rank_of(0, 0), 2u);
  EXPECT_DOUBLE_EQ(gt.optimal_rtt_ms(0), 10.0);
  EXPECT_DOUBLE_EQ(gt.optimal_rtt_ms(1), 5.0);
}

TEST(GroundTruthMatrix, RejectsRaggedMatrix) {
  EXPECT_THROW(GroundTruthMatrix({{1.0, 2.0}, {1.0}}), std::invalid_argument);
}

TEST(GroundTruthMatrix, TiesKeepStableOrder) {
  GroundTruthMatrix gt{{{10.0, 10.0, 5.0}}};
  EXPECT_EQ(gt.order_for(0), (std::vector<std::size_t>{2, 0, 1}));
}

TEST(GroundTruthMatrix, FromWorldIsConsistent) {
  WorldConfig config;
  config.seed = 21;
  config.num_candidates = 8;
  config.num_dns_servers = 10;
  config.cdn.target_replicas = 80;
  World world{config};
  const GroundTruthMatrix gt{world, world.dns_servers(), world.candidates()};
  EXPECT_EQ(gt.num_clients(), 10u);
  EXPECT_EQ(gt.num_candidates(), 8u);
  for (std::size_t c = 0; c < gt.num_clients(); ++c) {
    // Ranks form a permutation and the order is sorted by RTT.
    double prev = -1.0;
    for (std::size_t pos = 0; pos < gt.num_candidates(); ++pos) {
      const std::size_t cand = gt.order_for(c)[pos];
      EXPECT_EQ(gt.rank_of(c, cand), pos);
      const double rtt = gt.rtt_ms(c, cand);
      EXPECT_GE(rtt, prev);
      prev = rtt;
    }
    EXPECT_DOUBLE_EQ(gt.optimal_rtt_ms(c), gt.rtt_ms(c, gt.order_for(c)[0]));
  }
}

}  // namespace
}  // namespace crp::eval
