// The CDN's dynamic authoritative DNS server.
//
// Serves the CDN zone ("g.cdnsim.net"): A queries for a customer's CDN
// name are answered with replica addresses chosen by the redirection
// policy for the *querying resolver* — the same per-resolver granularity
// production CDNs use, with a short TTL (Akamai: 20 s) so answers stay
// fresh.
#pragma once

#include <cstdint>

#include "cdn/customer.hpp"
#include "cdn/deployment.hpp"
#include "cdn/redirection.hpp"
#include "common/sharded_counter.hpp"
#include "common/time.hpp"
#include "dns/zone.hpp"
#include "netsim/topology.hpp"

namespace crp::cdn {

struct CdnAuthoritativeConfig {
  /// TTL on A answers; the paper notes Akamai used 20 seconds.
  Duration answer_ttl = Seconds(20);
};

class CdnAuthoritative final : public dns::AuthoritativeServer {
 public:
  /// `topo`, `catalog`, `deployment` and `policy` must outlive the server.
  /// `host` is the server's own location (for resolver->authoritative
  /// latency accounting).
  CdnAuthoritative(const netsim::Topology& topo,
                   const CustomerCatalog& catalog,
                   const Deployment& deployment, RedirectionPolicy& policy,
                   HostId host, CdnAuthoritativeConfig config = {});

  dns::Message resolve(const dns::Question& question, Ipv4 resolver_addr,
                       SimTime now) override;
  [[nodiscard]] HostId host() const override { return host_; }

  /// Queries answered so far (the load a CRP service imposes on the CDN —
  /// see the commensalism discussion, §VI). Counted per thread and merged
  /// on read, so parallel probing campaigns may query this server
  /// concurrently (the policy must have been `prepare`d first) and the
  /// total is identical to a sequential run.
  [[nodiscard]] std::size_t queries_served() const {
    return queries_.total();
  }

 private:
  const netsim::Topology* topo_;
  const CustomerCatalog* catalog_;
  const Deployment* deployment_;
  RedirectionPolicy* policy_;
  HostId host_;
  CdnAuthoritativeConfig config_;
  ShardedCounter queries_;
};

/// Registers a full CDN DNS setup in `registry`: one static zone per
/// customer (CNAME web name -> CDN name, hosted at `customer_dns_host`)
/// and the dynamic CDN authoritative for the CDN zone. The returned zones
/// must be kept alive by the caller.
struct CdnDnsSetup {
  std::vector<std::unique_ptr<dns::StaticZone>> customer_zones;
  std::unique_ptr<CdnAuthoritative> authoritative;
};

[[nodiscard]] CdnDnsSetup register_cdn_dns(
    dns::ZoneRegistry& registry, const netsim::Topology& topo,
    const CustomerCatalog& catalog, const Deployment& deployment,
    RedirectionPolicy& policy, HostId cdn_dns_host, HostId customer_dns_host,
    CdnAuthoritativeConfig config = {});

}  // namespace crp::cdn
