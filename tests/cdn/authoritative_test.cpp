#include "cdn/authoritative.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "dns/resolver.hpp"

namespace crp::cdn {
namespace {

class CdnAuthoritativeTest : public ::testing::Test {
 protected:
  CdnAuthoritativeTest()
      : world_{41},
        policy_{*world_.oracle, world_.deployment, *world_.measurement},
        setup_{register_cdn_dns(registry_, world_.topo, world_.catalog,
                                world_.deployment, policy_,
                                world_.infra[0], world_.infra[1])} {}

  test::MiniWorld world_;
  LatencyDrivenPolicy policy_;
  dns::ZoneRegistry registry_;
  CdnDnsSetup setup_;
};

TEST_F(CdnAuthoritativeTest, AnswersARecordsForCdnName) {
  const auto& client = world_.topo.host(world_.clients[0]);
  const dns::Message reply = setup_.authoritative->resolve(
      dns::Question{world_.catalog.customer(0).cdn_name, dns::RecordType::kA},
      client.address(), SimTime::epoch());
  EXPECT_EQ(reply.rcode, dns::Rcode::kNoError);
  EXPECT_EQ(reply.answers.size(), 2u);  // Akamai-style two A records
  for (const auto& rr : reply.answers) {
    EXPECT_EQ(rr.type, dns::RecordType::kA);
    EXPECT_EQ(rr.ttl, Seconds(20));
    EXPECT_TRUE(world_.deployment.replica_of_address(rr.address)
                    .has_value());
  }
}

TEST_F(CdnAuthoritativeTest, AnswersDependOnResolverLocation) {
  // Two clients in different regions should (usually) see different
  // replicas for the same name at the same time.
  HostId far_a = world_.clients[0];
  HostId far_b;
  for (HostId h : world_.clients) {
    if (world_.topo.host(h).region != world_.topo.host(far_a).region) {
      far_b = h;
      break;
    }
  }
  ASSERT_TRUE(far_b.valid());
  const auto q = dns::Question{world_.catalog.customer(0).cdn_name,
                               dns::RecordType::kA};
  const auto ra = setup_.authoritative->resolve(
      q, world_.topo.host(far_a).address(), SimTime::epoch());
  const auto rb = setup_.authoritative->resolve(
      q, world_.topo.host(far_b).address(), SimTime::epoch());
  EXPECT_NE(ra.answers[0].address, rb.answers[0].address);
}

TEST_F(CdnAuthoritativeTest, NxDomainForUnknownCdnName) {
  const auto reply = setup_.authoritative->resolve(
      dns::Question{dns::Name::parse("zz.g.cdnsim.net"), dns::RecordType::kA},
      world_.topo.host(world_.clients[0]).address(), SimTime::epoch());
  EXPECT_EQ(reply.rcode, dns::Rcode::kNxDomain);
}

TEST_F(CdnAuthoritativeTest, ServFailForForeignResolverAddress) {
  const auto reply = setup_.authoritative->resolve(
      dns::Question{world_.catalog.customer(0).cdn_name, dns::RecordType::kA},
      Ipv4(8, 8, 8, 8), SimTime::epoch());
  EXPECT_EQ(reply.rcode, dns::Rcode::kServFail);
}

TEST_F(CdnAuthoritativeTest, CountsQueries) {
  const std::size_t before = setup_.authoritative->queries_served();
  (void)setup_.authoritative->resolve(
      dns::Question{world_.catalog.customer(0).cdn_name, dns::RecordType::kA},
      world_.topo.host(world_.clients[0]).address(), SimTime::epoch());
  EXPECT_EQ(setup_.authoritative->queries_served(), before + 1);
}

TEST_F(CdnAuthoritativeTest, FullResolutionThroughRecursiveResolver) {
  dns::RecursiveResolver resolver{world_.clients[0], registry_,
                                  world_.oracle.get()};
  const auto result = resolver.resolve(world_.catalog.customer(0).web_name,
                                       SimTime::epoch());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.addresses.size(), 2u);
  EXPECT_EQ(result.upstream_queries, 2);  // customer CNAME + CDN A
  EXPECT_GT(result.elapsed, Duration{0});
  for (Ipv4 addr : result.addresses) {
    EXPECT_TRUE(world_.deployment.replica_of_address(addr).has_value());
  }
}

TEST_F(CdnAuthoritativeTest, ShortTtlForcesRequeryAtNextProbe) {
  dns::RecursiveResolver resolver{world_.clients[0], registry_,
                                  world_.oracle.get()};
  const auto first = resolver.resolve(world_.catalog.customer(0).web_name,
                                      SimTime::epoch());
  const std::size_t queries_before = setup_.authoritative->queries_served();
  // 10 minutes later the 20 s A record has long expired.
  const auto second = resolver.resolve(world_.catalog.customer(0).web_name,
                                       SimTime::epoch() + Minutes(10));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(setup_.authoritative->queries_served(), queries_before + 1);
}

TEST_F(CdnAuthoritativeTest, CustomerZonesRegistered) {
  EXPECT_EQ(setup_.customer_zones.size(), world_.catalog.size());
  EXPECT_NE(registry_.find(world_.catalog.customer(0).web_name), nullptr);
  EXPECT_NE(registry_.find(world_.catalog.customer(0).cdn_name), nullptr);
}

}  // namespace
}  // namespace crp::cdn
