#include "cdn/redirection.hpp"

#include <gtest/gtest.h>

#include <set>

#include "../test_util.hpp"

namespace crp::cdn {
namespace {

class RedirectionTest : public ::testing::Test {
 protected:
  RedirectionTest() : world_{31} {}
  test::MiniWorld world_;
};

TEST_F(RedirectionTest, LatencyPolicyReturnsRequestedCount) {
  LatencyDrivenPolicy policy{*world_.oracle, world_.deployment,
                             *world_.measurement};
  const auto picks = policy.select(world_.clients[0],
                                   world_.catalog.customer(0),
                                   SimTime::epoch(), 2);
  EXPECT_EQ(picks.size(), 2u);
  EXPECT_NE(picks[0], picks[1]);
}

TEST_F(RedirectionTest, LatencyPolicyPicksNearbyReplicas) {
  LatencyDrivenPolicy policy{*world_.oracle, world_.deployment,
                             *world_.measurement};
  // The chosen replica should be much closer than the median replica.
  for (std::size_t c = 0; c < 10; ++c) {
    const HostId client = world_.clients[c];
    const auto picks = policy.select(client, world_.catalog.customer(0),
                                     SimTime::epoch(), 1);
    ASSERT_FALSE(picks.empty());
    if (world_.deployment.is_origin_fallback(picks[0])) continue;
    const double chosen_rtt = world_.oracle->base_rtt_ms(
        client, world_.deployment.replica(picks[0]).host);

    std::vector<double> all;
    for (const ReplicaServer& r : world_.deployment.replicas()) {
      all.push_back(world_.oracle->base_rtt_ms(client, r.host));
    }
    std::sort(all.begin(), all.end());
    EXPECT_LT(chosen_rtt, all[all.size() / 2]) << "client " << c;
  }
}

TEST_F(RedirectionTest, StableWithinRotationEpoch) {
  LatencyDrivenPolicy policy{*world_.oracle, world_.deployment,
                             *world_.measurement};
  const auto a = policy.select(world_.clients[0], world_.catalog.customer(0),
                               SimTime::epoch() + Seconds(1), 2);
  const auto b = policy.select(world_.clients[0], world_.catalog.customer(0),
                               SimTime::epoch() + Seconds(19), 2);
  EXPECT_EQ(a, b);
}

TEST_F(RedirectionTest, RotatesAcrossEpochs) {
  LatencyDrivenPolicy policy{*world_.oracle, world_.deployment,
                             *world_.measurement};
  std::set<ReplicaId> seen;
  for (int e = 0; e < 40; ++e) {
    for (ReplicaId id :
         policy.select(world_.clients[0], world_.catalog.customer(0),
                       SimTime::epoch() + Seconds(20 * e), 2)) {
      seen.insert(id);
    }
  }
  // Rotation should surface more than one answer pair over 40 epochs...
  EXPECT_GT(seen.size(), 2u);
  // ...but stay restricted to a small working set (paper: < 20 frequent).
  EXPECT_LE(seen.size(), 20u);
}

TEST_F(RedirectionTest, RespectsCustomerSubset) {
  LatencyDrivenPolicy policy{*world_.oracle, world_.deployment,
                             *world_.measurement};
  const Customer& customer = world_.catalog.customer(1);
  for (int e = 0; e < 20; ++e) {
    for (ReplicaId id :
         policy.select(world_.clients[1], customer,
                       SimTime::epoch() + Seconds(20 * e), 2)) {
      EXPECT_TRUE(customer.serves(id) ||
                  world_.deployment.is_origin_fallback(id));
    }
  }
}

TEST_F(RedirectionTest, CandidateListSortedByProximity) {
  LatencyDrivenPolicy policy{*world_.oracle, world_.deployment,
                             *world_.measurement};
  const auto& candidates = policy.candidates(world_.clients[0]);
  ASSERT_GT(candidates.size(), 10u);
  double prev = -1.0;
  for (ReplicaId id : candidates) {
    const double rtt = world_.oracle->base_rtt_ms(
        world_.clients[0], world_.deployment.replica(id).host);
    EXPECT_GE(rtt, prev);
    prev = rtt;
  }
}

TEST_F(RedirectionTest, ZeroCountReturnsEmpty) {
  LatencyDrivenPolicy policy{*world_.oracle, world_.deployment,
                             *world_.measurement};
  EXPECT_TRUE(policy.select(world_.clients[0], world_.catalog.customer(0),
                            SimTime::epoch(), 0)
                  .empty());
}

TEST_F(RedirectionTest, GeoStaticIsTimeInvariant) {
  GeoStaticPolicy policy{world_.topo, world_.deployment};
  const auto a = policy.select(world_.clients[0], world_.catalog.customer(0),
                               SimTime::epoch(), 2);
  const auto b = policy.select(world_.clients[0], world_.catalog.customer(0),
                               SimTime::epoch() + Hours(100), 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 2u);
}

TEST_F(RedirectionTest, RandomPolicyCoversSubsetBroadly) {
  RandomPolicy policy{world_.deployment, 7};
  std::set<ReplicaId> seen;
  for (int e = 0; e < 100; ++e) {
    for (ReplicaId id :
         policy.select(world_.clients[0], world_.catalog.customer(0),
                       SimTime::epoch() + Seconds(20 * e), 2)) {
      seen.insert(id);
      EXPECT_TRUE(world_.catalog.customer(0).serves(id));
    }
  }
  // Uniform selection roams far wider than the latency-driven pool.
  EXPECT_GT(seen.size(), 50u);
}

TEST_F(RedirectionTest, StickyPolicyNeverChanges) {
  StickyPolicy policy{*world_.oracle, world_.deployment,
                      *world_.measurement};
  const auto a = policy.select(world_.clients[2], world_.catalog.customer(0),
                               SimTime::epoch(), 2);
  for (int e = 1; e < 20; ++e) {
    EXPECT_EQ(policy.select(world_.clients[2], world_.catalog.customer(0),
                            SimTime::epoch() + Minutes(e * 7), 2),
              a);
  }
}

TEST_F(RedirectionTest, PolicyNames) {
  LatencyDrivenPolicy lat{*world_.oracle, world_.deployment,
                          *world_.measurement};
  GeoStaticPolicy geo{world_.topo, world_.deployment};
  RandomPolicy rnd{world_.deployment, 1};
  StickyPolicy sticky{*world_.oracle, world_.deployment,
                      *world_.measurement};
  EXPECT_STREQ(lat.name(), "latency-driven");
  EXPECT_STREQ(geo.name(), "geo-static");
  EXPECT_STREQ(rnd.name(), "random");
  EXPECT_STREQ(sticky.name(), "sticky");
}

TEST_F(RedirectionTest, NearbyClientsShareAnswers) {
  // Two clients at the same PoP must see heavily overlapping answer sets —
  // the foundation of CRP.
  LatencyDrivenPolicy policy{*world_.oracle, world_.deployment,
                             *world_.measurement};
  // Find two clients sharing a PoP (or at least an AS).
  HostId a;
  HostId b;
  for (std::size_t i = 0; i < world_.clients.size() && !b.valid(); ++i) {
    for (std::size_t j = i + 1; j < world_.clients.size(); ++j) {
      if (world_.topo.host(world_.clients[i]).region ==
          world_.topo.host(world_.clients[j]).region) {
        a = world_.clients[i];
        b = world_.clients[j];
        break;
      }
    }
  }
  ASSERT_TRUE(a.valid() && b.valid());

  std::set<ReplicaId> seen_a;
  std::set<ReplicaId> seen_b;
  for (int e = 0; e < 50; ++e) {
    const SimTime t = SimTime::epoch() + Seconds(20 * e);
    for (ReplicaId id :
         policy.select(a, world_.catalog.customer(0), t, 2)) {
      seen_a.insert(id);
    }
    for (ReplicaId id :
         policy.select(b, world_.catalog.customer(0), t, 2)) {
      seen_b.insert(id);
    }
  }
  std::size_t common = 0;
  for (ReplicaId id : seen_a) {
    if (seen_b.contains(id)) ++common;
  }
  EXPECT_GT(common, 0u);
}

TEST_F(RedirectionTest, HealthFilterExcludesDownReplicas) {
  LatencyDrivenPolicy policy{*world_.oracle, world_.deployment,
                             *world_.measurement};
  HealthConfig health_config;
  health_config.seed = 5;
  health_config.outage_probability = 0.5;
  const ReplicaHealth health{health_config};
  policy.set_health(&health);
  for (int e = 0; e < 30; ++e) {
    const SimTime t = SimTime::epoch() + Hours(6 * e);
    for (ReplicaId id :
         policy.select(world_.clients[0], world_.catalog.customer(0), t,
                       2)) {
      if (world_.deployment.is_origin_fallback(id)) continue;
      EXPECT_TRUE(health.available(id, t));
    }
  }
  // Detaching restores the full candidate set.
  policy.set_health(nullptr);
  EXPECT_FALSE(policy.select(world_.clients[0], world_.catalog.customer(0),
                             SimTime::epoch(), 2)
                   .empty());
}

}  // namespace
}  // namespace crp::cdn
