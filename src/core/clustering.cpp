#include "core/clustering.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "core/similarity_engine.hpp"

namespace crp::core {

std::vector<std::size_t> Clustering::multi_member_clusters() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    if (clusters[i].members.size() >= 2) out.push_back(i);
  }
  return out;
}

std::size_t Clustering::nodes_clustered() const {
  // Defined via multi_member_clusters() so there is exactly one notion of
  // "clustered" — clustering_stats() counts through this same helper.
  std::size_t count = 0;
  for (const std::size_t c : multi_member_clusters()) {
    count += clusters[c].members.size();
  }
  return count;
}

namespace {

/// Dense SMF given a per-node similarity source. `node_scores(node, sims)`
/// fills `sims` with the node's similarity to every other node; the rest
/// of the algorithm is shared between the dense-engine and reference
/// paths, which guarantees their outputs can differ only if the scores
/// do (and the engine's scores are bit-identical to similarity()'s).
/// The center-indexed SmfClusterer below is a separate implementation of
/// the same algorithm — deliberately, so the randomized oracle test
/// compares genuinely independent code paths.
template <typename StrengthFn, typename ScoresFn>
Clustering smf_cluster_impl(std::size_t n, const SmfConfig& config,
                            const StrengthFn& strength,
                            const ScoresFn& node_scores) {
  Clustering out;
  out.assignment.assign(n, 0);

  // Processing order: strongest mappings first (or random for ablation).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng{hash_combine({config.seed, stable_hash("smf")})};
  if (config.seeding == SmfConfig::Seeding::kStrongestFirst) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return strength(a) > strength(b);
                     });
  } else {
    rng.shuffle(order);
  }

  std::vector<double> sims(n, 0.0);

  // Pass 1: each node joins its most similar existing center if above
  // threshold, otherwise founds a new cluster with itself as center.
  for (std::size_t node : order) {
    node_scores(node, sims);
    std::size_t best_cluster = 0;
    double best_sim = -1.0;
    for (std::size_t c = 0; c < out.clusters.size(); ++c) {
      const double s = sims[out.clusters[c].center];
      if (s > best_sim) {
        best_sim = s;
        best_cluster = c;
      }
    }
    if (!out.clusters.empty() && best_sim >= config.threshold) {
      out.clusters[best_cluster].members.push_back(node);
      out.assignment[node] = best_cluster;
    } else {
      Clustering::Cluster cluster;
      cluster.center = node;
      cluster.members.push_back(node);
      out.clusters.push_back(std::move(cluster));
      out.assignment[node] = out.clusters.size() - 1;
    }
  }

  // Pass 2 (optional): random singletons become centers; other singletons
  // may join them. This rescues nodes that arrived before any compatible
  // center existed.
  if (config.second_pass) {
    std::vector<std::size_t> singles;
    for (std::size_t c = 0; c < out.clusters.size(); ++c) {
      if (out.clusters[c].members.size() == 1) singles.push_back(c);
    }
    rng.shuffle(singles);
    std::vector<bool> absorbed(out.clusters.size(), false);
    for (std::size_t ci : singles) {
      if (absorbed[ci]) continue;
      const std::size_t center = out.clusters[ci].center;
      node_scores(center, sims);
      for (std::size_t cj : singles) {
        if (cj == ci || absorbed[cj]) continue;
        const std::size_t other = out.clusters[cj].center;
        if (sims[other] >= config.threshold) {
          out.clusters[ci].members.push_back(other);
          out.assignment[other] = ci;
          absorbed[cj] = true;
        }
      }
    }
    // Compact away absorbed (now empty) clusters.
    Clustering compacted;
    compacted.assignment.assign(n, 0);
    for (std::size_t c = 0; c < out.clusters.size(); ++c) {
      if (absorbed[c]) continue;
      const std::size_t new_index = compacted.clusters.size();
      for (std::size_t node : out.clusters[c].members) {
        compacted.assignment[node] = new_index;
      }
      compacted.clusters.push_back(std::move(out.clusters[c]));
    }
    out = std::move(compacted);
  }
  return out;
}

}  // namespace

Clustering SmfClusterer::run(const SimilarityEngine& source,
                             const SmfConfig& config, ThreadPool* pool) {
  if (source.kind() != config.metric) {
    throw std::invalid_argument{
        "smf_cluster: engine metric disagrees with config.metric"};
  }
  const std::size_t n = source.size();
  stats_ = SmfRunStats{};
  stats_.nodes = n;

  Clustering out;
  out.assignment.assign(n, 0);

  // Identical order (and rng draw sequence) to the dense template above:
  // any divergence between the paths must come from scores, and scores
  // are bit-identical per pair.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng{hash_combine({config.seed, stable_hash("smf")})};
  if (config.seeding == SmfConfig::Seeding::kStrongestFirst) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return source.strongest_mapping(a) >
                              source.strongest_mapping(b);
                     });
  } else {
    rng.shuffle(order);
  }

  // Pass 1 against the center index. `centers_` row c mirrors cluster
  // c's center verbatim (rows are added at founding, never removed), so
  // best_match == the dense argmax over sims[center] — highest score,
  // ties to the lowest cluster index, cluster 0 at similarity 0 when the
  // node shares no replica with any center.
  centers_.clear(config.metric);
  std::size_t touched = 0;
  for (const std::size_t node : order) {
    const auto best = centers_.best_match(source.row_view(node), &touched);
    ++stats_.center_queries;
    stats_.maps_touched += touched;
    if (best.has_value() && best->similarity >= config.threshold) {
      out.clusters[best->index].members.push_back(node);
      out.assignment[node] = best->index;
    } else {
      Clustering::Cluster cluster;
      cluster.center = node;
      cluster.members.push_back(node);
      out.clusters.push_back(std::move(cluster));
      out.assignment[node] = out.clusters.size() - 1;
      const std::size_t row = centers_.add_row(source.row_view(node));
      assert(row == out.clusters.size() - 1);
      (void)row;
    }
  }
  stats_.pass1_clusters = out.clusters.size();

  // Pass 2 against a singleton-center index, tiled. Every pairwise
  // singleton score is independent of absorption state, so tiles of rows
  // are scored in parallel up front (skipping rows already absorbed when
  // the tile starts — their scores are never read) and the absorption
  // scan itself stays sequential, replaying the dense path's exact
  // comparisons in the exact order. Bit-identical for any pool size.
  if (config.second_pass) {
    std::vector<std::size_t> singles;
    for (std::size_t c = 0; c < out.clusters.size(); ++c) {
      if (out.clusters[c].members.size() == 1) singles.push_back(c);
    }
    rng.shuffle(singles);
    const std::size_t s_count = singles.size();
    stats_.pass2_singletons = s_count;

    std::vector<bool> absorbed(out.clusters.size(), false);
    if (s_count > 1) {
      singles_.clear(config.metric);
      for (const std::size_t ci : singles) {
        (void)singles_.add_row(source.row_view(out.clusters[ci].center));
      }

      constexpr std::size_t kTileRows = 128;
      ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
      std::vector<std::size_t> row_touched(kTileRows);
      for (std::size_t t0 = 0; t0 < s_count; t0 += kTileRows) {
        const std::size_t t1 = std::min(s_count, t0 + kTileRows);
        tile_.assign(t1 - t0, s_count, 0.0);
        std::fill(row_touched.begin(), row_touched.end(), std::size_t{0});
        p.parallel_for(t0, t1, [&](std::size_t pi) {
          // `absorbed` is only written between parallel sections, and a
          // row absorbed mid-tile merely wastes its precomputed scores.
          if (absorbed[singles[pi]]) return;
          singles_.scores(source.row_view(out.clusters[singles[pi]].center),
                          tile_.row(pi - t0), &row_touched[pi - t0]);
        });
        for (std::size_t pi = t0; pi < t1; ++pi) {
          const std::size_t ci = singles[pi];
          if (absorbed[ci]) continue;
          ++stats_.center_queries;
          stats_.maps_touched += row_touched[pi - t0];
          const auto sims = tile_.row(pi - t0);
          for (std::size_t pj = 0; pj < s_count; ++pj) {
            const std::size_t cj = singles[pj];
            if (cj == ci || absorbed[cj]) continue;
            if (sims[pj] >= config.threshold) {
              const std::size_t other = out.clusters[cj].center;
              out.clusters[ci].members.push_back(other);
              out.assignment[other] = ci;
              absorbed[cj] = true;
            }
          }
        }
      }
    }
    // Compact away absorbed (now empty) clusters.
    Clustering compacted;
    compacted.assignment.assign(n, 0);
    for (std::size_t c = 0; c < out.clusters.size(); ++c) {
      if (absorbed[c]) continue;
      const std::size_t new_index = compacted.clusters.size();
      for (const std::size_t node : out.clusters[c].members) {
        compacted.assignment[node] = new_index;
      }
      compacted.clusters.push_back(std::move(out.clusters[c]));
    }
    out = std::move(compacted);
  }
  return out;
}

Clustering smf_cluster(const SimilarityEngine& engine, const SmfConfig& config,
                       ThreadPool* pool) {
  SmfClusterer clusterer;
  return clusterer.run(engine, config, pool);
}

Clustering smf_cluster_dense(const SimilarityEngine& engine,
                             const SmfConfig& config) {
  if (engine.kind() != config.metric) {
    throw std::invalid_argument{
        "smf_cluster: engine metric disagrees with config.metric"};
  }
  return smf_cluster_impl(
      engine.size(), config,
      [&engine](std::size_t i) { return engine.strongest_mapping(i); },
      [&engine](std::size_t node, std::vector<double>& sims) {
        engine.scores_of(node, sims);
      });
}

Clustering smf_cluster(std::span<const RatioMap> maps,
                       const SmfConfig& config) {
  const SimilarityEngine engine{maps, config.metric};
  return smf_cluster(engine, config);
}

Clustering smf_cluster_reference(std::span<const RatioMap> maps,
                                 const SmfConfig& config) {
  return smf_cluster_impl(
      maps.size(), config,
      [&maps](std::size_t i) { return maps[i].strongest_mapping(); },
      [&maps, &config](std::size_t node, std::vector<double>& sims) {
        for (std::size_t i = 0; i < maps.size(); ++i) {
          sims[i] = similarity(config.metric, maps[node], maps[i]);
        }
      });
}

ClusteringStats clustering_stats(const Clustering& clustering,
                                 std::size_t total_nodes) {
  ClusteringStats stats;
  stats.total_nodes = total_nodes;
  // Both the count and the size list go through multi_member_clusters(),
  // the single definition of "clustered" (see nodes_clustered()).
  stats.nodes_clustered = clustering.nodes_clustered();
  std::vector<double> sizes;
  for (const std::size_t ci : clustering.multi_member_clusters()) {
    const Clustering::Cluster& c = clustering.clusters[ci];
    sizes.push_back(static_cast<double>(c.members.size()));
    stats.max_size = std::max(stats.max_size, c.members.size());
  }
  stats.num_clusters = sizes.size();
  if (total_nodes > 0) {
    stats.fraction_clustered = static_cast<double>(stats.nodes_clustered) /
                               static_cast<double>(total_nodes);
  }
  if (!sizes.empty()) {
    stats.mean_size = std::accumulate(sizes.begin(), sizes.end(), 0.0) /
                      static_cast<double>(sizes.size());
    stats.median_size = median(sizes);
  }
  return stats;
}

}  // namespace crp::core
