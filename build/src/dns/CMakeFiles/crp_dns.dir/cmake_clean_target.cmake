file(REMOVE_RECURSE
  "libcrp_dns.a"
)
