#include "service/sharded_frontend.hpp"

#include <algorithm>
#include <iterator>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/top_k.hpp"
#include "service/serving_detail.hpp"
#include "service/wire.hpp"
#include "sim/fault_plan.hpp"

namespace crp::service {

using serving_detail::ScoredRef;
using serving_detail::better_ref;

const char* to_string(ShardHealth health) {
  switch (health) {
    case ShardHealth::kClosed:
      return "closed";
    case ShardHealth::kOpen:
      return "open";
    case ShardHealth::kHalfOpen:
      return "half-open";
  }
  return "?";
}

namespace {

/// Merges per-shard top-k partials into the global top-k. Correctness
/// rests on the total order: any node in the global top-k beats all but
/// fewer than k others, so in particular fewer than k within its own
/// shard — it is in its shard's partial. The merge therefore never
/// misses a winner, and the order makes the result offer-order- (hence
/// shard-count-) independent.
std::vector<RankedNode> merge_partials(
    std::span<const std::vector<RankedNode>> partials, std::size_t k) {
  BoundedTopK<ScoredRef, decltype(&better_ref)> heap(k, &better_ref);
  for (const std::vector<RankedNode>& partial : partials) {
    for (const RankedNode& node : partial) {
      heap.offer(ScoredRef{&node.node_id, node.similarity});
    }
  }
  return serving_detail::materialize<RankedNode>(heap.take_sorted());
}

/// Batch form: merges client j's partials across every shard.
std::vector<RankedNode> merge_client(
    std::span<const std::vector<std::vector<RankedNode>>> partials,
    std::size_t j, std::size_t k) {
  BoundedTopK<ScoredRef, decltype(&better_ref)> heap(k, &better_ref);
  for (const auto& shard_partials : partials) {
    for (const RankedNode& node : shard_partials[j]) {
      heap.offer(ScoredRef{&node.node_id, node.similarity});
    }
  }
  return serving_detail::materialize<RankedNode>(heap.take_sorted());
}

}  // namespace

ShardedFrontend::ShardedFrontend(ShardedFrontendConfig config)
    : config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
  if (!config_.service.snapshots.enabled) {
    // The front-end answers from snapshots, so by default every
    // completed write must be visible to the next query — republish
    // after every accepted mutation. Callers that enabled snapshots
    // themselves keep their own pacing (and use the epoch vector to
    // bound what they are reading).
    config_.service.snapshots.enabled = true;
    config_.service.snapshots.max_epoch_lag = 1;
  }
  shards_.reserve(config_.shards);
  runtime_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<PositionService>(config_.service));
    // Publish the empty snapshot so a View never holds a null — reads
    // before the first write answer empty, not undefined.
    (void)shards_.back()->publish_snapshot(SimTime::epoch());
    runtime_.push_back(std::make_unique<ShardRuntime>());
  }
}

std::size_t ShardedFrontend::shard_index(std::string_view node_id,
                                         std::size_t shard_count) {
  if (shard_count <= 1) return 0;
  return static_cast<std::size_t>(stable_hash(node_id) % shard_count);
}

// --- fault machinery (inert while plan_ == nullptr) ---

void ShardedFrontend::set_fault_plan(const sim::FaultPlan* plan) {
  plan_ = plan != nullptr && plan->empty() ? nullptr : plan;
  if (plan_ == nullptr) return;
  // Seed every fallback with the currently published snapshot so a
  // shard that fails before its first armed write still has a
  // last-known-good to serve.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    runtime_[s]->fallback.store(shards_[s]->snapshot());
  }
}

void ShardedFrontend::open_breaker(std::size_t s, SimTime now) {
  ShardRuntime& rt = *runtime_[s];
  rt.health.store(static_cast<std::uint8_t>(ShardHealth::kOpen),
                  std::memory_order_relaxed);
  rt.opened_at = now;
  rt.consecutive_failures = 0;
  rt.half_open_successes = 0;
  breaker_opens_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedFrontend::process_shard_faults(std::size_t s, SimTime now) {
  ShardRuntime& rt = *runtime_[s];
  // Crash events first: the event key is pure (rule, epoch), so the
  // wipe happens exactly once per scheduled crash no matter how many
  // writes, ticks or expiries observe it.
  const auto crash = plan_->shard_crash_event(s, now);
  if (crash.has_value() && (!rt.crash_seen || *crash != rt.last_crash_key)) {
    rt.crash_seen = true;
    rt.last_crash_key = *crash;
    if (rt.fallback.load() == nullptr) {
      rt.fallback.store(shards_[s]->snapshot());
    }
    // The wipe: the shard publishes an empty snapshot, but Views keep
    // serving the fallback captured above until recovery re-closes the
    // breaker.
    shards_[s]->reset(now);
    rt.needs_recovery = true;
    shard_crashes_.fetch_add(1, std::memory_order_relaxed);
    if (static_cast<ShardHealth>(rt.health.load(
            std::memory_order_relaxed)) != ShardHealth::kOpen) {
      open_breaker(s, now);
    } else {
      rt.opened_at = now;  // crash while open restarts the cooldown
    }
  }
  // Half-open scheduling: deterministic sim-time cooldown, and never
  // while the shard still needs a replay — a probe into an empty shard
  // would "succeed" and close the breaker over a hollow partition.
  if (static_cast<ShardHealth>(rt.health.load(std::memory_order_relaxed)) ==
          ShardHealth::kOpen &&
      !rt.needs_recovery && rt.opened_at >= SimTime::epoch() &&
      now - rt.opened_at >= config_.breaker.open_cooldown) {
    rt.health.store(static_cast<std::uint8_t>(ShardHealth::kHalfOpen),
                    std::memory_order_relaxed);
    rt.half_open_successes = 0;
    breaker_half_opens_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardedFrontend::note_write_success(std::size_t s) {
  ShardRuntime& rt = *runtime_[s];
  rt.consecutive_failures = 0;
  if (static_cast<ShardHealth>(rt.health.load(std::memory_order_relaxed)) ==
      ShardHealth::kHalfOpen) {
    if (++rt.half_open_successes >= config_.breaker.success_threshold) {
      rt.health.store(static_cast<std::uint8_t>(ShardHealth::kClosed),
                      std::memory_order_relaxed);
      rt.half_open_successes = 0;
      breaker_closes_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ShardedFrontend::note_write_failure(std::size_t s, SimTime now) {
  ShardRuntime& rt = *runtime_[s];
  if (static_cast<ShardHealth>(rt.health.load(std::memory_order_relaxed)) ==
      ShardHealth::kHalfOpen) {
    // A failed probe re-opens immediately — half-open admits traffic on
    // sufferance.
    open_breaker(s, now);
    return;
  }
  if (++rt.consecutive_failures >= config_.breaker.failure_threshold) {
    open_breaker(s, now);
  }
}

bool ShardedFrontend::admit_write(std::size_t s, SimTime now,
                                  std::size_t weight) {
  if (plan_ == nullptr) return true;
  process_shard_faults(s, now);
  ShardRuntime& rt = *runtime_[s];
  if (static_cast<ShardHealth>(rt.health.load(std::memory_order_relaxed)) ==
      ShardHealth::kOpen) {
    writes_shed_.fetch_add(weight, std::memory_order_relaxed);
    return false;
  }
  // Bounded retry with exponential backoff: retry r draws at
  // now + 2^(r-1) * retry_backoff, so a stall epoch boundary inside the
  // backoff window lets a retry succeed — and the draws stay pure
  // functions of (shard, attempt, advanced clock).
  const ShardBreakerConfig& br = config_.breaker;
  for (std::size_t attempt = 0;; ++attempt) {
    const SimTime t =
        attempt == 0
            ? now
            : now + Duration{br.retry_backoff.micros()
                             << (attempt - 1)};
    if (!plan_->shard_stalled(s, t, attempt)) {
      note_write_success(s);
      return true;
    }
    if (attempt == br.max_retries) break;
    write_retries_.fetch_add(1, std::memory_order_relaxed);
  }
  writes_failed_.fetch_add(weight, std::memory_order_relaxed);
  note_write_failure(s, now);
  return false;
}

void ShardedFrontend::refresh_fallback(std::size_t s) {
  runtime_[s]->fallback.store(shards_[s]->snapshot());
}

void ShardedFrontend::tick(SimTime now) {
  if (plan_ == nullptr) return;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    process_shard_faults(s, now);
  }
}

ShardHealth ShardedFrontend::shard_health(std::size_t index) const {
  return static_cast<ShardHealth>(
      runtime_[index]->health.load(std::memory_order_relaxed));
}

std::vector<std::size_t> ShardedFrontend::shards_needing_recovery() const {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < runtime_.size(); ++s) {
    if (runtime_[s]->needs_recovery) out.push_back(s);
  }
  return out;
}

std::size_t ShardedFrontend::recover_shard(std::size_t index,
                                           std::span<const std::string> replay,
                                           SimTime now, ThreadPool* pool) {
  ShardRuntime& rt = *runtime_[index];
  if (!rt.needs_recovery) return 0;
  // Keep only this shard's frames: peers hand over whole stores, and
  // replaying another shard's nodes here would corrupt the partition.
  std::vector<std::string> owned;
  owned.reserve(replay.size());
  for (const std::string& bytes : replay) {
    const auto id = peek_node_id(bytes);
    if (id.has_value() && shard_of(*id) == index) owned.push_back(bytes);
  }
  const std::size_t accepted =
      shards_[index]->publish_batch(owned, now, pool);
  (void)shards_[index]->publish_snapshot(now);
  recovery_replays_.fetch_add(accepted, std::memory_order_relaxed);
  rt.needs_recovery = false;
  refresh_fallback(index);
  // Caught up: the breaker closes without half-open ceremony — the
  // replay itself was the probe.
  if (static_cast<ShardHealth>(rt.health.load(std::memory_order_relaxed)) !=
      ShardHealth::kClosed) {
    rt.health.store(static_cast<std::uint8_t>(ShardHealth::kClosed),
                    std::memory_order_relaxed);
    breaker_closes_.fetch_add(1, std::memory_order_relaxed);
  }
  rt.consecutive_failures = 0;
  rt.half_open_successes = 0;
  return accepted;
}

FrontendHealthStats ShardedFrontend::health_stats() const {
  FrontendHealthStats s;
  s.breaker_opens = breaker_opens_.load(std::memory_order_relaxed);
  s.breaker_half_opens =
      breaker_half_opens_.load(std::memory_order_relaxed);
  s.breaker_closes = breaker_closes_.load(std::memory_order_relaxed);
  s.write_retries = write_retries_.load(std::memory_order_relaxed);
  s.writes_failed = writes_failed_.load(std::memory_order_relaxed);
  s.writes_shed = writes_shed_.load(std::memory_order_relaxed);
  s.shard_crashes = shard_crashes_.load(std::memory_order_relaxed);
  s.recovery_replays = recovery_replays_.load(std::memory_order_relaxed);
  s.stale_fallback_views =
      health_counters_->stale_fallback_views.load(std::memory_order_relaxed);
  s.degraded_answers =
      health_counters_->degraded_answers.load(std::memory_order_relaxed);
  s.partial_answers =
      health_counters_->partial_answers.load(std::memory_order_relaxed);
  return s;
}

// --- writes ---

bool ShardedFrontend::publish(PositionReport report, SimTime now) {
  const std::size_t s = shard_of(report.node_id);
  if (!admit_write(s, now, 1)) return false;
  const bool accepted = shards_[s]->publish(std::move(report), now);
  if (plan_ != nullptr) refresh_fallback(s);
  return accepted;
}

bool ShardedFrontend::publish_encoded(std::string_view bytes, SimTime now) {
  // Route by the peeked id; frames whose header won't even peek are a
  // routing failure, counted here and delivered nowhere (decode would
  // reject them anyway — peek failing implies decode rejects).
  const auto id = peek_node_id(bytes);
  if (!id.has_value()) {
    routing_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::size_t s = shard_of(*id);
  if (!admit_write(s, now, 1)) return false;
  const bool accepted = shards_[s]->publish_encoded(bytes, now);
  if (plan_ != nullptr) refresh_fallback(s);
  return accepted;
}

std::size_t ShardedFrontend::publish_batch(std::span<const std::string> batch,
                                           SimTime now, ThreadPool* pool) {
  if (shards_.size() == 1) {
    if (!admit_write(0, now, batch.size())) return 0;
    const std::size_t accepted = shards_[0]->publish_batch(batch, now, pool);
    if (plan_ != nullptr) refresh_fallback(0);
    return accepted;
  }
  std::vector<std::vector<std::string>> groups(shards_.size());
  for (const std::string& bytes : batch) {
    const auto id = peek_node_id(bytes);
    if (!id.has_value()) {
      routing_rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    groups[shard_of(*id)].push_back(bytes);
  }
  // Admission runs sequentially on the writer (breaker state is
  // writer-owned); each non-empty group passes or sheds as one unit.
  // Crash/probe scheduling advances for every shard, traffic or not.
  std::vector<char> admitted(shards_.size(), 1);
  if (plan_ != nullptr) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (groups[s].empty()) {
        process_shard_faults(s, now);
      } else {
        admitted[s] = admit_write(s, now, groups[s].size()) ? 1 : 0;
      }
    }
  }
  // Distinct shards are distinct single-writer domains, so the groups
  // apply in parallel; within a shard the group keeps batch order, so
  // per-id acceptance is exactly the sequential routing's. The nested
  // per-shard decode parallel_for runs inline on the worker.
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  std::vector<std::size_t> accepted(shards_.size(), 0);
  p.parallel_for(0, shards_.size(), [&](std::size_t s) {
    if (admitted[s] == 0) return;
    accepted[s] = shards_[s]->publish_batch(groups[s], now, &p);
  });
  std::size_t total = 0;
  for (const std::size_t a : accepted) total += a;
  if (plan_ != nullptr) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (admitted[s] != 0 && !groups[s].empty()) refresh_fallback(s);
    }
  }
  return total;
}

bool ShardedFrontend::remove(const std::string& node_id) {
  const std::size_t s = shard_of(node_id);
  // remove() carries no timestamp, so there is no clock to draw a stall
  // against — admission checks only the breaker.
  if (plan_ != nullptr && shard_health(s) == ShardHealth::kOpen) {
    writes_shed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const bool dropped = shards_[s]->remove(node_id);
  if (plan_ != nullptr) refresh_fallback(s);
  return dropped;
}

std::size_t ShardedFrontend::expire(SimTime now) {
  std::size_t dropped = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (plan_ != nullptr) {
      // Maintenance, not client traffic: a stalled or failed shard just
      // skips this sweep — no retries, no breaker transitions.
      process_shard_faults(s, now);
      if (shard_health(s) != ShardHealth::kClosed ||
          plan_->shard_stalled(s, now)) {
        continue;
      }
    }
    dropped += shards_[s]->expire(now);
    if (plan_ != nullptr) refresh_fallback(s);
  }
  return dropped;
}

void ShardedFrontend::publish_snapshots(SimTime now) {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (plan_ != nullptr) {
      process_shard_faults(s, now);
      if (shard_health(s) != ShardHealth::kClosed ||
          plan_->shard_stalled(s, now)) {
        continue;  // a stalled shard stops republishing, per the kind
      }
    }
    (void)shards_[s]->publish_snapshot(now);
    if (plan_ != nullptr) refresh_fallback(s);
  }
}

// --- inspection ---

std::optional<core::RatioMap> ShardedFrontend::map_of(
    const std::string& node_id) const {
  return shards_[shard_of(node_id)]->map_of(node_id);
}

std::optional<PositionReport> ShardedFrontend::report_of(
    const std::string& node_id) const {
  return shards_[shard_of(node_id)]->report_of(node_id);
}

std::size_t ShardedFrontend::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

// --- epochs ---

std::vector<std::uint64_t> ShardedFrontend::write_epochs() const {
  std::vector<std::uint64_t> epochs;
  epochs.reserve(shards_.size());
  for (const auto& shard : shards_) {
    epochs.push_back(shard->membership_epoch());
  }
  return epochs;
}

std::uint64_t ShardedFrontend::epoch_lag(const View& view) const {
  std::uint64_t lag = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    lag = std::max(lag,
                   shards_[s]->membership_epoch() - view.epochs()[s]);
  }
  return lag;
}

// --- reads ---

ShardedFrontend::View ShardedFrontend::view() const {
  View v;
  v.snaps_.reserve(shards_.size());
  v.epochs_.reserve(shards_.size());
  v.health_.reserve(shards_.size());
  v.usable_bound_ =
      std::max(config_.service.staleness_bound,
               config_.service.stale_usable_bound);
  v.counters_ = health_counters_;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::uint8_t h = static_cast<std::uint8_t>(ShardHealth::kClosed);
    std::shared_ptr<const ServingSnapshot> snap;
    if (plan_ != nullptr) {
      h = runtime_[s]->health.load(std::memory_order_relaxed);
      if (static_cast<ShardHealth>(h) != ShardHealth::kClosed) {
        // Failed shard: serve its last-known-good fallback, not
        // whatever the wiped/stalled service currently publishes.
        snap = runtime_[s]->fallback.load();
        if (snap != nullptr) {
          health_counters_->stale_fallback_views.fetch_add(
              1, std::memory_order_relaxed);
        }
      }
    }
    if (snap == nullptr) snap = shards_[s]->snapshot();
    v.epochs_.push_back(snap->membership_epoch());
    v.snaps_.push_back(std::move(snap));
    v.health_.push_back(h);
  }
  return v;
}

ShardCompleteness ShardedFrontend::View::completeness(SimTime now) const {
  const std::size_t n = snaps_.size();
  ShardCompleteness c;
  c.stale_shards.assign(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    if (static_cast<ShardHealth>(health_[s]) == ShardHealth::kClosed) {
      ++c.shards_answered;
    } else if (now - snaps_[s]->frozen_at() <= usable_bound_) {
      // The fallback is within the stale-usable window: the shard
      // answers, flagged, from its last-known-good capture.
      ++c.shards_answered;
      c.stale_shards[s] = true;
    } else {
      c.missing_shards.push_back(s);
    }
  }
  return c;
}

std::size_t ShardedFrontend::View::shard_of(std::string_view node_id) const {
  return shard_index(node_id, snaps_.size());
}

std::size_t ShardedFrontend::View::size() const {
  std::size_t total = 0;
  for (const auto& snap : snaps_) total += snap->size();
  return total;
}

std::vector<std::string> ShardedFrontend::View::live_nodes(
    SimTime now) const {
  // Disjoint partitions, each already sorted per the live_nodes
  // contract — pairwise merges keep the union sorted.
  std::vector<std::string> merged;
  for (const auto& snap : snaps_) {
    std::vector<std::string> part = snap->live_nodes(now);
    if (merged.empty()) {
      merged = std::move(part);
      continue;
    }
    std::vector<std::string> next;
    next.reserve(merged.size() + part.size());
    std::merge(std::make_move_iterator(merged.begin()),
               std::make_move_iterator(merged.end()),
               std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()),
               std::back_inserter(next));
    merged = std::move(next);
  }
  return merged;
}

std::vector<RankedNode> ShardedFrontend::View::closest_any(
    const std::string& client, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  const std::size_t n = snaps_.size();
  if (n == 1) return snaps_[0]->closest_any(client, k, now);
  const std::size_t owner = shard_of(client);
  snaps_[owner]->count_queries();
  const auto res = snaps_[owner]->resident(client, now);
  if (!res.has_value() || !res->live) return {};
  std::vector<std::vector<RankedNode>> partials(n);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(0, n, [&](std::size_t s) {
    partials[s] = snaps_[s]->partial_closest_any(
        res->row, s == owner ? res->slot : ServingSnapshot::npos,
        /*stale_band=*/false, k, now);
  });
  return merge_partials(partials, k);
}

std::vector<RankedNode> ShardedFrontend::View::closest(
    const std::string& client, std::span<const std::string> candidates,
    std::size_t k, SimTime now, ThreadPool* pool) const {
  const std::size_t n = snaps_.size();
  if (n == 1) return snaps_[0]->closest(client, candidates, k, now);
  const std::size_t owner = shard_of(client);
  snaps_[owner]->count_queries();
  const auto res = snaps_[owner]->resident(client, now);
  if (!res.has_value() || !res->live) return {};
  std::vector<std::vector<RankedNode>> partials(n);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(0, n, [&](std::size_t s) {
    const auto vetted =
        snaps_[s]->vet_candidates(candidates, /*stale_band=*/false, now);
    partials[s] = snaps_[s]->partial_closest(
        res->row, s == owner ? res->slot : ServingSnapshot::npos, vetted, k);
  });
  return merge_partials(partials, k);
}

TieredAnswer ShardedFrontend::View::tiered_query(
    const std::string& client, std::span<const std::string> candidates,
    bool any, std::size_t k, SimTime now, ThreadPool* pool) const {
  const std::size_t n = snaps_.size();
  if (n == 1) {
    return any ? snaps_[0]->closest_any_tiered(client, k, now)
               : snaps_[0]->closest_tiered(client, candidates, k, now);
  }
  const std::size_t owner = shard_of(client);
  snaps_[owner]->count_queries();
  TieredAnswer out;
  const auto res = snaps_[owner]->resident(client, now);
  if (!res.has_value()) {
    out.reason = DegradedReason::kUnknownClient;
    snaps_[owner]->count_outcome(AnswerTier::kRefused);
    return out;
  }
  const bool fresh = res->live;
  if (!fresh && !res->stale_usable) {
    out.reason = DegradedReason::kClientExpired;
    snaps_[owner]->count_outcome(AnswerTier::kRefused);
    return out;
  }
  const bool stale_band = !fresh;
  std::vector<std::vector<RankedNode>> partials(n);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(0, n, [&](std::size_t s) {
    const std::size_t exclude =
        s == owner ? res->slot : ServingSnapshot::npos;
    if (any) {
      partials[s] = snaps_[s]->partial_closest_any(res->row, exclude,
                                                   stale_band, k, now);
    } else {
      const auto vetted =
          snaps_[s]->vet_candidates(candidates, stale_band, now);
      partials[s] =
          snaps_[s]->partial_closest(res->row, exclude, vetted, k);
    }
  });
  out.ranked = merge_partials(partials, k);
  if (out.ranked.empty()) {
    out.tier = AnswerTier::kRefused;
    out.reason = DegradedReason::kNoUsableCandidates;
    snaps_[owner]->count_outcome(AnswerTier::kRefused);
    return out;
  }
  out.tier = fresh ? AnswerTier::kFresh : AnswerTier::kStale;
  out.reason = fresh ? DegradedReason::kNone : DegradedReason::kStaleClient;
  snaps_[owner]->count_outcome(out.tier);
  return out;
}

TieredAnswer ShardedFrontend::View::closest_any_tiered(
    const std::string& client, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  return tiered_query(client, {}, /*any=*/true, k, now, pool);
}

TieredAnswer ShardedFrontend::View::closest_tiered(
    const std::string& client, std::span<const std::string> candidates,
    std::size_t k, SimTime now, ThreadPool* pool) const {
  return tiered_query(client, candidates, /*any=*/false, k, now, pool);
}

GatheredAnswer ShardedFrontend::View::gathered_query(
    const std::string& client, std::span<const std::string> candidates,
    bool any, std::size_t k, SimTime now, ThreadPool* pool) const {
  const std::size_t n = snaps_.size();
  GatheredAnswer out;
  out.completeness = completeness(now);
  std::vector<char> missing(n, 0);
  for (const std::size_t s : out.completeness.missing_shards) {
    missing[s] = 1;
  }
  const std::size_t owner = shard_of(client);
  snaps_[owner]->count_queries();
  if (missing[owner] != 0) {
    // Nothing left that knows the client: its shard is down and the
    // fallback aged out. Typed refusal, not an empty vector — the
    // caller can tell "retry after recovery" from "node gone".
    out.tiered.reason = DegradedReason::kShardUnavailable;
    snaps_[owner]->count_outcome(AnswerTier::kRefused);
    return out;
  }
  const auto res = snaps_[owner]->resident(client, now);
  if (!res.has_value()) {
    out.tiered.reason = DegradedReason::kUnknownClient;
    snaps_[owner]->count_outcome(AnswerTier::kRefused);
    return out;
  }
  const bool fresh = res->live;
  if (!fresh && !res->stale_usable) {
    out.tiered.reason = DegradedReason::kClientExpired;
    snaps_[owner]->count_outcome(AnswerTier::kRefused);
    return out;
  }
  // Scatter over the answering shards. A stale-fallback shard widens to
  // the stale band (its capture is old; its stale-but-usable reports
  // are the whole point of serving it); missing shards contribute
  // nothing. On an all-healthy view this is tiered_query verbatim.
  std::vector<std::vector<RankedNode>> partials(n);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(0, n, [&](std::size_t s) {
    if (missing[s] != 0) return;
    const bool stale_band = !fresh || out.completeness.stale_shards[s];
    const std::size_t exclude =
        s == owner ? res->slot : ServingSnapshot::npos;
    if (any) {
      partials[s] = snaps_[s]->partial_closest_any(res->row, exclude,
                                                   stale_band, k, now);
    } else {
      const auto vetted =
          snaps_[s]->vet_candidates(candidates, stale_band, now);
      partials[s] = snaps_[s]->partial_closest(res->row, exclude, vetted, k);
    }
  });
  out.tiered.ranked = merge_partials(partials, k);
  if (out.tiered.ranked.empty()) {
    out.tiered.tier = AnswerTier::kRefused;
    out.tiered.reason = DegradedReason::kNoUsableCandidates;
    snaps_[owner]->count_outcome(AnswerTier::kRefused);
    return out;
  }
  const bool used_stale_shard = out.completeness.any_stale();
  if (!fresh) {
    out.tiered.tier = AnswerTier::kStale;
    out.tiered.reason = DegradedReason::kStaleClient;
  } else if (used_stale_shard) {
    out.tiered.tier = AnswerTier::kStale;
    out.tiered.reason = DegradedReason::kStaleShard;
  } else {
    out.tiered.tier = AnswerTier::kFresh;
    out.tiered.reason = DegradedReason::kNone;
  }
  snaps_[owner]->count_outcome(out.tiered.tier);
  if (counters_ != nullptr) {
    if (used_stale_shard) {
      counters_->degraded_answers.fetch_add(1, std::memory_order_relaxed);
    }
    if (!out.completeness.complete()) {
      counters_->partial_answers.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return out;
}

GatheredAnswer ShardedFrontend::View::closest_any_gathered(
    const std::string& client, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  return gathered_query(client, {}, /*any=*/true, k, now, pool);
}

GatheredAnswer ShardedFrontend::View::closest_gathered(
    const std::string& client, std::span<const std::string> candidates,
    std::size_t k, SimTime now, ThreadPool* pool) const {
  return gathered_query(client, candidates, /*any=*/false, k, now, pool);
}

std::vector<RankedNode> ShardedFrontend::View::top_k(
    const core::RatioMap& query, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  const std::size_t n = snaps_.size();
  if (n == 1) return snaps_[0]->top_k(query, k, now);
  // The query owns no corpus row, so there is no owning shard; the
  // query itself counts on shard 0 (the partials' similarity work
  // counts on the shard that did it, as everywhere).
  snaps_[0]->count_queries();
  std::vector<std::vector<RankedNode>> partials(n);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(0, n, [&](std::size_t s) {
    partials[s] = snaps_[s]->partial_top_k(query, k, now);
  });
  return merge_partials(partials, k);
}

std::vector<std::vector<RankedNode>> ShardedFrontend::View::closest_batch(
    std::span<const std::string> clients, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  const std::size_t n = snaps_.size();
  if (n == 1) return snaps_[0]->closest_batch(clients, k, now, pool);
  std::vector<std::vector<RankedNode>> out(clients.size());
  std::vector<std::uint64_t> counts(n, 0);
  std::vector<ServingSnapshot::ExternalClient> ext;
  std::vector<std::size_t> result_at;
  ext.reserve(clients.size());
  result_at.reserve(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const std::size_t owner = shard_of(clients[i]);
    ++counts[owner];
    const auto res = snaps_[owner]->resident(clients[i], now);
    if (!res.has_value() || !res->live) continue;
    ext.push_back(
        ServingSnapshot::ExternalClient{res->row, owner, res->slot});
    result_at.push_back(i);
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (counts[s] != 0) snaps_[s]->count_queries(counts[s]);
  }
  if (ext.empty()) return out;
  // Scatter: one task per shard ranks every eligible client against its
  // partition (parallelism = shard count, the deployment's real
  // topology — one process per shard); gather: per-client merges fan
  // out over the same pool.
  std::vector<std::vector<std::vector<RankedNode>>> partials(n);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(0, n, [&](std::size_t s) {
    partials[s] = snaps_[s]->partial_closest_batch(ext, s, k, now);
  });
  p.parallel_for(0, ext.size(), [&](std::size_t j) {
    out[result_at[j]] = merge_client(partials, j, k);
  });
  return out;
}

std::vector<std::vector<RankedNode>> ShardedFrontend::View::closest_batch(
    std::span<const std::string> clients,
    std::span<const std::string> candidates, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  const std::size_t n = snaps_.size();
  if (n == 1) {
    return snaps_[0]->closest_batch(clients, candidates, k, now, pool);
  }
  std::vector<std::vector<RankedNode>> out(clients.size());
  std::vector<std::uint64_t> counts(n, 0);
  std::vector<ServingSnapshot::ExternalClient> ext;
  std::vector<std::size_t> result_at;
  ext.reserve(clients.size());
  result_at.reserve(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const std::size_t owner = shard_of(clients[i]);
    ++counts[owner];
    const auto res = snaps_[owner]->resident(clients[i], now);
    if (!res.has_value() || !res->live) continue;
    ext.push_back(
        ServingSnapshot::ExternalClient{res->row, owner, res->slot});
    result_at.push_back(i);
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (counts[s] != 0) snaps_[s]->count_queries(counts[s]);
  }
  if (ext.empty()) return out;
  std::vector<std::vector<std::vector<RankedNode>>> partials(n);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(0, n, [&](std::size_t s) {
    const auto vetted =
        snaps_[s]->vet_candidates(candidates, /*stale_band=*/false, now);
    partials[s] = snaps_[s]->partial_closest_batch(ext, s, vetted, k);
  });
  p.parallel_for(0, ext.size(), [&](std::size_t j) {
    out[result_at[j]] = merge_client(partials, j, k);
  });
  return out;
}

// --- frontend convenience wrappers (one View capture each) ---

std::vector<std::string> ShardedFrontend::live_nodes(SimTime now) const {
  return view().live_nodes(now);
}

std::vector<RankedNode> ShardedFrontend::closest(
    const std::string& client, std::span<const std::string> candidates,
    std::size_t k, SimTime now, ThreadPool* pool) const {
  return view().closest(client, candidates, k, now, pool);
}

std::vector<RankedNode> ShardedFrontend::closest_any(
    const std::string& client, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  return view().closest_any(client, k, now, pool);
}

TieredAnswer ShardedFrontend::closest_any_tiered(const std::string& client,
                                                 std::size_t k, SimTime now,
                                                 ThreadPool* pool) const {
  return view().closest_any_tiered(client, k, now, pool);
}

TieredAnswer ShardedFrontend::closest_tiered(
    const std::string& client, std::span<const std::string> candidates,
    std::size_t k, SimTime now, ThreadPool* pool) const {
  return view().closest_tiered(client, candidates, k, now, pool);
}

std::vector<RankedNode> ShardedFrontend::top_k(const core::RatioMap& query,
                                               std::size_t k, SimTime now,
                                               ThreadPool* pool) const {
  return view().top_k(query, k, now, pool);
}

std::vector<std::vector<RankedNode>> ShardedFrontend::closest_batch(
    std::span<const std::string> clients, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  return view().closest_batch(clients, k, now, pool);
}

std::vector<std::vector<RankedNode>> ShardedFrontend::closest_batch(
    std::span<const std::string> clients,
    std::span<const std::string> candidates, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  return view().closest_batch(clients, candidates, k, now, pool);
}

GatheredAnswer ShardedFrontend::closest_any_gathered(
    const std::string& client, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  return view().closest_any_gathered(client, k, now, pool);
}

GatheredAnswer ShardedFrontend::closest_gathered(
    const std::string& client, std::span<const std::string> candidates,
    std::size_t k, SimTime now, ThreadPool* pool) const {
  return view().closest_gathered(client, candidates, k, now, pool);
}

// --- stats ---

std::vector<ServiceStats> ShardedFrontend::shard_stats() const {
  std::vector<ServiceStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) stats.push_back(shard->stats());
  return stats;
}

ServiceStats ShardedFrontend::stats() const {
  ServiceStats total = aggregate_stats(shard_stats());
  // Routing happens above the shards, so its reject count lives here.
  total.routing_rejected +=
      routing_rejected_.load(std::memory_order_relaxed);
  return total;
}

}  // namespace crp::service
