file(REMOVE_RECURSE
  "libcrp_workload.a"
)
