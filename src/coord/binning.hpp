// Landmark binning (Ratnasamy et al., INFOCOM 2002) — the prior
// relative-positioning scheme the paper positions CRP against (§II:
// "supporting a relative network positioning system as that proposed by
// Ratnasamy et al., but without requiring landmark selection or
// additional measurements").
//
// Each node probes a fixed set of landmarks and derives its *bin*: the
// landmark ordering by increasing RTT, augmented with a latency-level
// digit per landmark (e.g. 0: <100 ms, 1: 100-200 ms, 2: >=200 ms).
// Nodes with identical bins are considered topologically close. Unlike
// CRP, the scheme needs landmark infrastructure and O(#landmarks) active
// probes per node — the cost CRP eliminates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "core/clustering.hpp"
#include "netsim/latency_model.hpp"

namespace crp::coord {

struct BinningConfig {
  std::uint64_t seed = 43;
  /// Latency-level boundaries in ms (digits 0..edges.size()).
  std::vector<double> level_edges = {100.0, 200.0};
  /// Multiplicative probe noise (log-normal sigma).
  double probe_noise_sigma = 0.04;
};

/// A node's bin: landmark order (nearest first) plus level digits in
/// landmark-index order.
struct Bin {
  std::vector<std::uint8_t> order;
  std::vector<std::uint8_t> levels;

  friend bool operator==(const Bin&, const Bin&) = default;
  friend auto operator<=>(const Bin&, const Bin&) = default;

  /// Compact textual form, e.g. "2:0:1|011" (order | levels).
  [[nodiscard]] std::string to_string() const;
};

class LandmarkBinning {
 public:
  /// `oracle` must outlive the instance; `landmarks` must be non-empty.
  LandmarkBinning(const netsim::LatencyOracle& oracle,
                  std::vector<HostId> landmarks, BinningConfig config = {});

  /// Probes every landmark from `node` at time `t` and returns its bin.
  [[nodiscard]] Bin bin_of(HostId node, SimTime t);

  /// Clusters `nodes` by identical bins; the cluster center is the first
  /// node of each bin group (the scheme itself defines no center; any
  /// representative works for inter-cluster comparisons).
  [[nodiscard]] core::Clustering cluster(const std::vector<HostId>& nodes,
                                         SimTime t);

  [[nodiscard]] const std::vector<HostId>& landmarks() const {
    return landmarks_;
  }
  /// Landmark probes issued so far (the cost CRP avoids).
  [[nodiscard]] std::uint64_t total_probes() const { return probes_; }

 private:
  const netsim::LatencyOracle* oracle_;
  std::vector<HostId> landmarks_;
  BinningConfig config_;
  std::uint64_t probes_ = 0;
};

/// Picks `count` well-separated landmarks from `candidates` greedily
/// (farthest-point heuristic on base RTT) — the "landmark selection"
/// problem CRP side-steps entirely.
[[nodiscard]] std::vector<HostId> select_landmarks(
    const netsim::LatencyOracle& oracle, const std::vector<HostId>& candidates,
    std::size_t count, std::uint64_t seed);

}  // namespace crp::coord
