#include "common/ids.hpp"

#include <gtest/gtest.h>

#include <type_traits>
#include <unordered_set>

namespace crp {
namespace {

TEST(Id, DefaultIsInvalid) {
  HostId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, HostId::invalid());
}

TEST(Id, ConstructedIsValid) {
  HostId id{3};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 3u);
  EXPECT_EQ(id.index(), 3u);
}

TEST(Id, Ordering) {
  EXPECT_LT(HostId{1}, HostId{2});
  EXPECT_EQ(HostId{5}, HostId{5});
  EXPECT_NE(HostId{5}, HostId{6});
}

TEST(Id, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<HostId, ReplicaId>);
  static_assert(!std::is_same_v<AsnId, RegionId>);
}

TEST(Id, Hashable) {
  std::unordered_set<HostId> set;
  set.insert(HostId{1});
  set.insert(HostId{2});
  set.insert(HostId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Id, MaxValueReservedAsInvalid) {
  HostId id{HostId::kInvalidValue};
  EXPECT_FALSE(id.valid());
}

}  // namespace
}  // namespace crp
