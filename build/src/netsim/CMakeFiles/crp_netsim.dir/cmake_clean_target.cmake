file(REMOVE_RECURSE
  "libcrp_netsim.a"
)
