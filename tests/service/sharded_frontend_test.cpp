// Oracles for the sharded front-end (DESIGN.md §9): every query through
// ShardedFrontend must reproduce a single unsharded PositionService
// bit-for-bit — same rankings, same similarities (EXPECT_EQ on the
// doubles), same tiers — for any shard count, any metric, any pool
// size, through churn, tombstones and stale clients. Plus the sharded
// mechanics themselves: routing partition, epoch vectors, stats
// aggregation, gossip equivalence and concurrent serving.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "service/gossip.hpp"
#include "service/position_service.hpp"
#include "service/sharded_frontend.hpp"
#include "service/wire.hpp"

namespace crp::service {
namespace {

core::RatioMap random_map(Rng& rng, std::uint32_t id_space = 24) {
  std::vector<core::RatioMap::Entry> entries;
  const int k = static_cast<int>(rng.uniform_int(1, 6));
  for (int j = 0; j < k; ++j) {
    entries.emplace_back(
        ReplicaId{static_cast<std::uint32_t>(rng.uniform_int(0, id_space - 1))},
        rng.uniform(0.05, 1.0));
  }
  return core::RatioMap::from_ratios(entries);
}

PositionReport report_of(std::string id, core::RatioMap map, SimTime when) {
  PositionReport r;
  r.node_id = std::move(id);
  r.when = when;
  r.map = std::move(map);
  return r;
}

void expect_same_ranked(const std::vector<RankedNode>& got,
                        const std::vector<RankedNode>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].node_id, want[i].node_id) << "rank " << i;
    EXPECT_EQ(got[i].similarity, want[i].similarity) << "rank " << i;
  }
}

void expect_same_tiered(const TieredAnswer& got, const TieredAnswer& want) {
  EXPECT_EQ(got.tier, want.tier);
  EXPECT_EQ(got.reason, want.reason);
  expect_same_ranked(got.ranked, want.ranked);
}

/// Publishes the same randomized population — fresh, stale-usable and
/// beyond-stale reports, plus some removals — into both surfaces.
struct TwinCorpus {
  TwinCorpus(PositionService& svc, ShardedFrontend& fe, std::uint64_t seed) {
    Rng rng{seed};
    const SimTime t0 = SimTime::epoch();
    for (int i = 0; i < 60; ++i) {
      const std::string id = "n-" + std::to_string(i);
      // Spread publish times so at now_ = t0+7h the early nodes are
      // past the 6h staleness bound (stale tier when enabled).
      const SimTime when = t0 + Minutes(i * 9);
      const auto map = random_map(rng);
      EXPECT_TRUE(svc.publish(report_of(id, map, when), when));
      EXPECT_TRUE(fe.publish(report_of(id, map, when), when));
      ids.push_back(id);
    }
    // Tombstones on both sides.
    for (int i = 0; i < 60; i += 17) {
      EXPECT_TRUE(svc.remove(ids[static_cast<std::size_t>(i)]));
      EXPECT_TRUE(fe.remove(ids[static_cast<std::size_t>(i)]));
    }
    clients = ids;
    clients.push_back("unknown");     // never published
    clients.push_back(ids[17]);       // duplicate
    clients.push_back(ids[0]);        // removed
    for (std::size_t i = 0; i < ids.size(); i += 5) {
      candidates.push_back(ids[i]);
    }
    candidates.push_back("unknown-candidate");
    query_maps.push_back(random_map(rng));
    query_maps.push_back(random_map(rng));
  }

  std::vector<std::string> ids;
  std::vector<std::string> clients;
  std::vector<std::string> candidates;
  std::vector<core::RatioMap> query_maps;
};

ServiceConfig oracle_config(core::SimilarityKind metric) {
  ServiceConfig cfg;
  cfg.metric = metric;
  cfg.stale_usable_bound = Hours(12);  // stale tier active
  return cfg;
}

/// The full-surface oracle: every read through the frontend must equal
/// the unsharded service bit for bit.
void expect_equivalent(PositionService& svc, ShardedFrontend& fe,
                       const TwinCorpus& corpus, SimTime now,
                       ThreadPool* pool) {
  EXPECT_EQ(fe.size(), svc.size());
  const auto view = fe.view();
  EXPECT_EQ(view.live_nodes(now), svc.live_nodes(now));
  for (const std::string& c : corpus.clients) {
    SCOPED_TRACE("client " + c);
    for (const std::size_t k : {std::size_t{1}, std::size_t{4},
                                std::size_t{100}}) {
      expect_same_ranked(view.closest_any(c, k, now, pool),
                         svc.closest_any(c, k, now));
      expect_same_ranked(view.closest(c, corpus.candidates, k, now, pool),
                         svc.closest(c, corpus.candidates, k, now));
    }
    expect_same_tiered(view.closest_any_tiered(c, 4, now, pool),
                       svc.closest_any_tiered(c, 4, now));
    expect_same_tiered(view.closest_tiered(c, corpus.candidates, 4, now,
                                           pool),
                       svc.closest_tiered(c, corpus.candidates, 4, now));
  }
  for (const auto& q : corpus.query_maps) {
    expect_same_ranked(view.top_k(q, 6, now, pool), svc.top_k(q, 6, now));
  }
  const auto got_any = view.closest_batch(corpus.clients, 5, now, pool);
  const auto want_any = svc.closest_batch(corpus.clients, 5, now);
  ASSERT_EQ(got_any.size(), want_any.size());
  for (std::size_t i = 0; i < got_any.size(); ++i) {
    SCOPED_TRACE("batch client " + corpus.clients[i]);
    expect_same_ranked(got_any[i], want_any[i]);
  }
  const auto got_cand =
      view.closest_batch(corpus.clients, corpus.candidates, 5, now, pool);
  const auto want_cand =
      svc.closest_batch(corpus.clients, corpus.candidates, 5, now);
  ASSERT_EQ(got_cand.size(), want_cand.size());
  for (std::size_t i = 0; i < got_cand.size(); ++i) {
    SCOPED_TRACE("batch candidate client " + corpus.clients[i]);
    expect_same_ranked(got_cand[i], want_cand[i]);
  }
}

void run_oracle(std::size_t shards, core::SimilarityKind metric,
                std::size_t workers) {
  SCOPED_TRACE(::testing::Message() << "shards=" << shards << " metric="
                                    << static_cast<int>(metric)
                                    << " workers=" << workers);
  const ServiceConfig cfg = oracle_config(metric);
  PositionService svc{cfg};
  ShardedFrontendConfig fc;
  fc.shards = shards;
  fc.service = cfg;
  ShardedFrontend fe{fc};
  TwinCorpus corpus{svc, fe, 7700 + shards};
  ThreadPool pool{workers};
  const SimTime now = SimTime::epoch() + Hours(7);
  expect_equivalent(svc, fe, corpus, now, &pool);

  // Churn: interleaved publishes, removes and an expire sweep, applied
  // identically; the surfaces must stay equivalent afterwards.
  Rng rng{4242};
  SimTime t = now;
  for (int round = 0; round < 30; ++round) {
    t = t + Minutes(1);
    const auto& id = corpus.ids[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(corpus.ids.size()) - 1))];
    const auto map = random_map(rng);
    EXPECT_EQ(fe.publish(report_of(id, map, t), t),
              svc.publish(report_of(id, map, t), t));
    if (round % 7 == 3) {
      const auto& victim = corpus.ids[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(corpus.ids.size()) - 1))];
      EXPECT_EQ(fe.remove(victim), svc.remove(victim));
    }
  }
  EXPECT_EQ(fe.expire(t), svc.expire(t));
  expect_equivalent(svc, fe, corpus, t, &pool);
}

TEST(ShardedOracle, BitIdenticalAcrossShardCounts) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{3}, std::size_t{8}}) {
    run_oracle(shards, core::SimilarityKind::kCosine, 2);
  }
}

TEST(ShardedOracle, BitIdenticalAcrossMetrics) {
  run_oracle(3, core::SimilarityKind::kJaccard, 2);
  run_oracle(3, core::SimilarityKind::kWeightedOverlap, 2);
}

TEST(ShardedOracle, BitIdenticalAcrossPoolSizes) {
  for (const std::size_t workers : {std::size_t{0}, std::size_t{1},
                                    std::size_t{4}}) {
    run_oracle(4, core::SimilarityKind::kCosine, workers);
  }
}

TEST(ShardedOracle, PublishBatchMatchesUnshardedWithMalformedBytes) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    PositionService svc;
    ShardedFrontendConfig fc;
    fc.shards = shards;
    ShardedFrontend fe{fc};
    Rng rng{31337};
    const SimTime t0 = SimTime::epoch();
    std::vector<std::string> batch;
    for (int i = 0; i < 25; ++i) {
      const auto bytes =
          encode(report_of("b-" + std::to_string(i), random_map(rng), t0));
      ASSERT_TRUE(bytes.has_value());
      batch.push_back(*bytes);
    }
    batch.push_back("");                    // too short to peek
    batch.push_back("garbage-not-a-report");  // bad magic
    batch.push_back(batch[3]);              // duplicate: same timestamp, rejected
    ThreadPool pool{2};
    EXPECT_EQ(fe.publish_batch(batch, t0, &pool),
              svc.publish_batch(batch, t0, &pool));
    EXPECT_EQ(fe.live_nodes(t0), svc.live_nodes(t0));
    const auto fs = fe.stats();
    const auto ss = svc.stats();
    EXPECT_EQ(fs.reports_accepted, ss.reports_accepted);
    EXPECT_EQ(ss.routing_rejected, 0u);  // unsharded: nothing routes
    if (shards == 1) {
      // The 1-shard fast path delegates the whole batch without
      // peeking, so rejects land in the shard, as unsharded.
      EXPECT_EQ(fs.routing_rejected, 0u);
      EXPECT_EQ(fs.reports_rejected, ss.reports_rejected);
    } else {
      // Routed path: unpeekable frames are a routing failure, counted
      // above the shards and delivered nowhere — the total drop count
      // still matches the unsharded service's.
      EXPECT_EQ(fs.routing_rejected, 2u);
      EXPECT_EQ(fs.reports_rejected + fs.routing_rejected,
                ss.reports_rejected);
    }
  }
}

TEST(ShardedOracle, RoutingRejectedSplitsFromDecodeRejected) {
  // The peek contract is one-sided: peek failing implies decode rejects,
  // but a frame can peek fine and still fail decode (corrupt body). The
  // former is a routing_rejected at the front-end; the latter must reach
  // its owning shard and count there as an ordinary reports_rejected.
  ShardedFrontendConfig fc;
  fc.shards = 4;
  ShardedFrontend fe{fc};
  Rng rng{919};
  const SimTime t0 = SimTime::epoch();
  const auto good = encode(report_of("peekable-node", random_map(rng), t0));
  ASSERT_TRUE(good.has_value());
  std::string truncated = good->substr(0, good->size() - 3);
  ASSERT_TRUE(peek_node_id(truncated).has_value());
  ASSERT_FALSE(decode(truncated).has_value());
  std::vector<std::string> batch{"", "xx", truncated};
  ThreadPool pool{2};
  EXPECT_EQ(fe.publish_batch(batch, t0, &pool), 0u);
  auto fs = fe.stats();
  EXPECT_EQ(fs.routing_rejected, 2u);  // "" and "xx" never peeked
  EXPECT_EQ(fs.reports_rejected, 1u);  // truncated died in its shard
  EXPECT_EQ(fe.shard(fe.shard_of("peekable-node")).stats().reports_rejected,
            1u);
  // publish_encoded follows the same split.
  EXPECT_FALSE(fe.publish_encoded("zz", t0));
  EXPECT_FALSE(fe.publish_encoded(truncated, t0));
  fs = fe.stats();
  EXPECT_EQ(fs.routing_rejected, 3u);
  EXPECT_EQ(fs.reports_rejected, 2u);
}

TEST(ShardedFrontendTest, RoutingPartitionsNodesByStableHash) {
  ShardedFrontendConfig fc;
  fc.shards = 4;
  ShardedFrontend fe{fc};
  Rng rng{55};
  const SimTime t0 = SimTime::epoch();
  for (int i = 0; i < 80; ++i) {
    const std::string id = "r-" + std::to_string(i);
    ASSERT_TRUE(fe.publish(report_of(id, random_map(rng), t0), t0));
  }
  std::size_t total = 0;
  for (std::size_t s = 0; s < fe.shard_count(); ++s) {
    for (const auto& id : fe.shard(s).live_nodes(t0)) {
      EXPECT_EQ(fe.shard_of(id), s) << id << " on wrong shard";
    }
    total += fe.shard(s).size();
  }
  EXPECT_EQ(total, fe.size());
  EXPECT_EQ(fe.size(), 80u);
  // shard_index is pure: same id, same count, same answer everywhere.
  EXPECT_EQ(ShardedFrontend::shard_index("r-7", 4), fe.shard_of("r-7"));
  EXPECT_EQ(ShardedFrontend::shard_index("r-7", 1), 0u);
}

TEST(ShardedFrontendTest, ShardCountClampedToOne) {
  ShardedFrontendConfig fc;
  fc.shards = 0;
  ShardedFrontend fe{fc};
  EXPECT_EQ(fe.shard_count(), 1u);
}

TEST(ShardedFrontendTest, ForcesSnapshotsOnWhenLeftDisabled) {
  ShardedFrontend fe;  // default config: snapshots disabled by the user
  EXPECT_TRUE(fe.config().service.snapshots.enabled);
  EXPECT_EQ(fe.config().service.snapshots.max_epoch_lag, 1u);
  // Every completed write is immediately visible to the next query.
  Rng rng{66};
  const SimTime t0 = SimTime::epoch();
  ASSERT_TRUE(fe.publish(report_of("a", random_map(rng), t0), t0));
  ASSERT_TRUE(fe.publish(report_of("b", random_map(rng), t0), t0));
  EXPECT_EQ(fe.live_nodes(t0).size(), 2u);
  // An explicitly enabled config keeps the caller's pacing.
  ShardedFrontendConfig paced;
  paced.service.snapshots.enabled = true;
  paced.service.snapshots.max_epoch_lag = 64;
  ShardedFrontend fe2{paced};
  EXPECT_EQ(fe2.config().service.snapshots.max_epoch_lag, 64u);
}

TEST(ShardedFrontendTest, EpochVectorTracksPerShardWrites) {
  ShardedFrontendConfig fc;
  fc.shards = 3;
  ShardedFrontend fe{fc};
  Rng rng{77};
  const SimTime t0 = SimTime::epoch();
  const auto empty_view = fe.view();
  ASSERT_EQ(empty_view.epochs().size(), 3u);
  EXPECT_EQ(fe.epoch_lag(empty_view), 0u);

  for (int i = 0; i < 12; ++i) {
    const std::string id = "e-" + std::to_string(i);
    ASSERT_TRUE(fe.publish(report_of(id, random_map(rng), t0), t0));
  }
  // The pinned pre-write view now lags; its lag equals the max number
  // of writes any one shard absorbed.
  std::uint64_t max_shard_epoch = 0;
  const auto epochs = fe.write_epochs();
  for (const std::uint64_t e : epochs) {
    max_shard_epoch = std::max(max_shard_epoch, e);
  }
  EXPECT_EQ(fe.epoch_lag(empty_view), max_shard_epoch);
  // A fresh view catches up: its epoch vector is the writer's.
  const auto fresh = fe.view();
  EXPECT_EQ(fe.epoch_lag(fresh), 0u);
  ASSERT_EQ(fresh.epochs().size(), epochs.size());
  for (std::size_t s = 0; s < epochs.size(); ++s) {
    EXPECT_EQ(fresh.epochs()[s], epochs[s]);
  }
  // Pinned views keep answering at their capture even as writes land.
  const auto before = fresh.closest_any("e-3", 3, t0);
  ASSERT_TRUE(fe.remove("e-3"));
  EXPECT_GE(fe.epoch_lag(fresh), 1u);
  expect_same_ranked(fresh.closest_any("e-3", 3, t0), before);
  EXPECT_TRUE(fe.view().closest_any("e-3", 3, t0).empty());
}

TEST(ShardedFrontendTest, StatsAggregateMatchesUnshardedAttribution) {
  const ServiceConfig cfg = oracle_config(core::SimilarityKind::kCosine);
  PositionService svc{cfg};
  ShardedFrontendConfig fc;
  fc.shards = 4;
  fc.service = cfg;
  ShardedFrontend fe{fc};
  TwinCorpus corpus{svc, fe, 808};
  const SimTime now = SimTime::epoch() + Hours(7);
  for (const std::string& c : corpus.clients) {
    (void)svc.closest_any(c, 3, now);
    (void)fe.closest_any(c, 3, now);
    (void)svc.closest_any_tiered(c, 3, now);
    (void)fe.closest_any_tiered(c, 3, now);
  }
  (void)svc.closest_batch(corpus.clients, 3, now);
  (void)fe.closest_batch(corpus.clients, 3, now);
  const auto ss = svc.stats();
  const auto fs = fe.stats();
  // Per-query attribution aggregates to exactly the unsharded counts;
  // similarity_queries/maps_touched are per-shard work (N partials per
  // scattered query) and deliberately not compared.
  EXPECT_EQ(fs.queries_served, ss.queries_served);
  EXPECT_EQ(fs.fresh_answers, ss.fresh_answers);
  EXPECT_EQ(fs.stale_answers, ss.stale_answers);
  EXPECT_EQ(fs.refused_queries, ss.refused_queries);
  EXPECT_EQ(fs.reports_accepted, ss.reports_accepted);
  EXPECT_EQ(fs.reports_rejected, ss.reports_rejected);
  // shard_stats sums to stats().
  const auto per_shard = fe.shard_stats();
  ASSERT_EQ(per_shard.size(), 4u);
  const auto resum = aggregate_stats(per_shard);
  EXPECT_EQ(resum.queries_served, fs.queries_served);
  EXPECT_EQ(resum.similarity_queries, fs.similarity_queries);
  EXPECT_EQ(resum.maps_touched, fs.maps_touched);
}

TEST(ShardedFrontendTest, InspectionRoutesToOwningShard) {
  ShardedFrontendConfig fc;
  fc.shards = 3;
  ShardedFrontend fe{fc};
  Rng rng{99};
  const SimTime t0 = SimTime::epoch();
  const auto map = random_map(rng);
  ASSERT_TRUE(fe.publish(report_of("probe", map, t0), t0));
  const auto got_map = fe.map_of("probe");
  ASSERT_TRUE(got_map.has_value());
  const auto report = fe.report_of("probe");
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->node_id, "probe");
  EXPECT_EQ(report->when, t0);
  EXPECT_FALSE(fe.map_of("absent").has_value());
  EXPECT_FALSE(fe.remove("absent"));
  // The owning shard holds it; the others don't.
  const std::size_t owner = fe.shard_of("probe");
  for (std::size_t s = 0; s < fe.shard_count(); ++s) {
    EXPECT_EQ(fe.shard(s).map_of("probe").has_value(), s == owner);
  }
}

TEST(ShardedGossip, ShardedStoresMatchUnshardedTrajectory) {
  const auto run_mesh = [](std::size_t store_shards) {
    GossipConfig cfg;
    cfg.store_shards = store_shards;
    GossipMesh mesh{cfg};
    for (int i = 0; i < 10; ++i) mesh.add_node("g-" + std::to_string(i));
    mesh.fully_connect();
    Rng rng{2024};
    const SimTime t0 = SimTime::epoch();
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(
          mesh.publish_local("g-" + std::to_string(i), random_map(rng), t0));
    }
    std::vector<double> coverages;
    SimTime t = t0;
    for (int round = 0; round < 6; ++round) {
      t = t + Minutes(5);
      (void)mesh.round(t);
      coverages.push_back(mesh.coverage(t));
    }
    return std::pair{coverages, mesh.stats()};
  };
  const auto [unsharded_cov, unsharded_stats] = run_mesh(1);
  const auto [sharded_cov, sharded_stats] = run_mesh(4);
  // live_nodes is bit-identical across store types, so both meshes draw
  // the same rng sequence and transmit the same reports — coverage
  // matches round for round.
  ASSERT_EQ(sharded_cov.size(), unsharded_cov.size());
  for (std::size_t i = 0; i < sharded_cov.size(); ++i) {
    EXPECT_EQ(sharded_cov[i], unsharded_cov[i]) << "round " << i;
  }
  EXPECT_EQ(sharded_stats.reports_sent, unsharded_stats.reports_sent);
  EXPECT_EQ(sharded_stats.publish_rejected, unsharded_stats.publish_rejected);
  EXPECT_EQ(sharded_stats.bytes, unsharded_stats.bytes);
  // Cross-shard landings only exist with sharded stores.
  EXPECT_EQ(unsharded_stats.cross_shard_misses, 0u);
  EXPECT_GT(sharded_stats.cross_shard_misses, 0u);
  EXPECT_GT(unsharded_cov.back(), 0.9);
}

TEST(ShardedGossip, StoreAccessorsDispatchByMeshKind) {
  GossipConfig sharded_cfg;
  sharded_cfg.store_shards = 2;
  GossipMesh sharded{sharded_cfg};
  sharded.add_node("a");
  EXPECT_TRUE(sharded.sharded());
  EXPECT_THROW((void)sharded.store("a"), std::logic_error);
  EXPECT_THROW((void)sharded.store_snapshot("a"), std::logic_error);
  EXPECT_EQ(sharded.sharded_store("a").shard_count(), 2u);
  EXPECT_EQ(sharded.store_view("a").shard_count(), 2u);
  EXPECT_THROW((void)sharded.sharded_store("nope"), std::invalid_argument);

  GossipMesh plain;
  plain.add_node("a");
  EXPECT_FALSE(plain.sharded());
  EXPECT_THROW((void)plain.sharded_store("a"), std::logic_error);
  EXPECT_THROW((void)plain.store_view("a"), std::logic_error);
  (void)plain.store("a");  // no throw
}

TEST(ShardedGossip, LocalQueriesThroughShardedStoreMatchUnsharded) {
  const auto build = [](std::size_t store_shards) {
    GossipConfig cfg;
    cfg.store_shards = store_shards;
    auto mesh = std::make_unique<GossipMesh>(cfg);
    for (int i = 0; i < 8; ++i) mesh->add_node("q-" + std::to_string(i));
    mesh->fully_connect();
    Rng rng{4711};
    const SimTime t0 = SimTime::epoch();
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(
          mesh->publish_local("q-" + std::to_string(i), random_map(rng), t0));
    }
    for (int round = 0; round < 5; ++round) {
      (void)mesh->round(t0 + Minutes(5 * (round + 1)));
    }
    return mesh;
  };
  const auto plain = build(1);
  const auto sharded = build(3);
  const SimTime now = SimTime::epoch() + Minutes(30);
  for (int i = 0; i < 8; ++i) {
    const std::string id = "q-" + std::to_string(i);
    SCOPED_TRACE(id);
    expect_same_ranked(sharded->store_view(id).closest_any(id, 3, now),
                       plain->store(id).closest_any(id, 3, now));
  }
}

TEST(ShardedConcurrent, ViewsStayCoherentUnderWriterChurn) {
  ShardedFrontendConfig fc;
  fc.shards = 3;
  ShardedFrontend fe{fc};
  Rng rng{3535};
  const SimTime t0 = SimTime::epoch();
  std::vector<std::string> ids;
  std::vector<core::RatioMap> maps;
  for (int i = 0; i < 30; ++i) {
    ids.push_back("c-" + std::to_string(i));
    maps.push_back(random_map(rng));
    ASSERT_TRUE(fe.publish(report_of(ids.back(), maps.back(), t0), t0));
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> coherent{true};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Rng reader_rng{static_cast<std::uint64_t>(900 + r)};
      while (!stop.load(std::memory_order_relaxed)) {
        const auto view = fe.view();
        const auto& client = ids[static_cast<std::size_t>(
            reader_rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) -
                                          1))];
        // A pinned view is immutable: the same query answers
        // identically no matter what the writer is doing.
        const auto first = view.closest_any(client, 4, t0);
        const auto second = view.closest_any(client, 4, t0);
        if (first.size() != second.size()) {
          coherent.store(false, std::memory_order_relaxed);
          continue;
        }
        for (std::size_t i = 0; i < first.size(); ++i) {
          if (first[i].node_id != second[i].node_id ||
              first[i].similarity != second[i].similarity) {
            coherent.store(false, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  Rng churn{1717};
  SimTime t = t0;
  for (int round = 0; round < 300; ++round) {
    t = t + Seconds(1);
    const auto i = static_cast<std::size_t>(
        churn.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
    (void)fe.publish(report_of(ids[i], maps[i], t), t);
    if (round % 11 == 0) {
      (void)fe.remove(ids[static_cast<std::size_t>(churn.uniform_int(
          0, static_cast<std::int64_t>(ids.size()) - 1))]);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  EXPECT_TRUE(coherent.load());
  // Quiesced: a fresh view equals the writer's epoch vector.
  EXPECT_EQ(fe.epoch_lag(fe.view()), 0u);
}

}  // namespace
}  // namespace crp::service
