#include "core/similarity.hpp"

#include <algorithm>

namespace crp::core {

const char* to_string(SimilarityKind kind) {
  switch (kind) {
    case SimilarityKind::kCosine:
      return "cosine";
    case SimilarityKind::kJaccard:
      return "jaccard";
    case SimilarityKind::kWeightedOverlap:
      return "weighted-overlap";
  }
  return "?";
}

double jaccard_similarity(const RatioMap& a, const RatioMap& b) {
  if (a.empty() || b.empty()) return 0.0;
  const std::size_t inter = a.overlap_count(b);
  const std::size_t uni = a.size() + b.size() - inter;
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double weighted_overlap(const RatioMap& a, const RatioMap& b) {
  double sum = 0.0;
  auto ia = a.entries().begin();
  auto ib = b.entries().begin();
  while (ia != a.entries().end() && ib != b.entries().end()) {
    if (ia->first < ib->first) {
      ++ia;
    } else if (ib->first < ia->first) {
      ++ib;
    } else {
      sum += std::min(ia->second, ib->second);
      ++ia;
      ++ib;
    }
  }
  return std::clamp(sum, 0.0, 1.0);
}

double similarity(SimilarityKind kind, const RatioMap& a, const RatioMap& b) {
  switch (kind) {
    case SimilarityKind::kCosine:
      return cosine_similarity(a, b);
    case SimilarityKind::kJaccard:
      return jaccard_similarity(a, b);
    case SimilarityKind::kWeightedOverlap:
      return weighted_overlap(a, b);
  }
  return 0.0;
}

}  // namespace crp::core
