#include "dns/name.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace crp::dns {
namespace {

TEST(Name, ParseBasic) {
  const Name n = Name::parse("www.example.com");
  EXPECT_EQ(n.num_labels(), 3u);
  EXPECT_EQ(n.to_string(), "www.example.com");
}

TEST(Name, CaseInsensitive) {
  EXPECT_EQ(Name::parse("WWW.Example.COM"), Name::parse("www.example.com"));
}

TEST(Name, TrailingDotIgnored) {
  EXPECT_EQ(Name::parse("example.com."), Name::parse("example.com"));
}

TEST(Name, RootName) {
  const Name root = Name::parse("");
  EXPECT_TRUE(root.empty());
  EXPECT_EQ(root.to_string(), ".");
  EXPECT_EQ(Name::parse("."), root);
}

TEST(Name, RejectsEmptyLabel) {
  EXPECT_THROW((void)Name::parse("a..b"), std::invalid_argument);
  EXPECT_THROW((void)Name::parse(".a"), std::invalid_argument);
}

TEST(Name, RejectsOversizedLabel) {
  const std::string big(64, 'x');
  EXPECT_THROW((void)Name::parse(big + ".com"), std::invalid_argument);
  const std::string ok(63, 'x');
  EXPECT_NO_THROW((void)Name::parse(ok + ".com"));
}

TEST(Name, SubdomainRelation) {
  const Name sub = Name::parse("a.b.example.com");
  EXPECT_TRUE(sub.is_subdomain_of(Name::parse("example.com")));
  EXPECT_TRUE(sub.is_subdomain_of(Name::parse("b.example.com")));
  EXPECT_TRUE(sub.is_subdomain_of(sub));          // itself
  EXPECT_TRUE(sub.is_subdomain_of(Name::parse("")));  // root
  EXPECT_FALSE(sub.is_subdomain_of(Name::parse("other.com")));
  EXPECT_FALSE(Name::parse("example.com")
                   .is_subdomain_of(Name::parse("a.example.com")));
}

TEST(Name, SuffixMatchIsLabelwiseNotTextual) {
  // "badexample.com" must NOT be a subdomain of "example.com".
  EXPECT_FALSE(Name::parse("badexample.com")
                   .is_subdomain_of(Name::parse("example.com")));
}

TEST(Name, Prefixed) {
  const Name zone = Name::parse("g.cdnsim.net");
  EXPECT_EQ(zone.prefixed("c0").to_string(), "c0.g.cdnsim.net");
  EXPECT_TRUE(zone.prefixed("c0").is_subdomain_of(zone));
}

TEST(Name, OrderingAndHash) {
  std::unordered_set<Name> set;
  set.insert(Name::parse("a.com"));
  set.insert(Name::parse("A.COM"));
  set.insert(Name::parse("b.com"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_LT(Name::parse("a.com"), Name::parse("b.com"));
}

}  // namespace
}  // namespace crp::dns
