// Client-side glue between a CrpNode and a PositionService.
//
// A ServiceNode periodically snapshots its CrpNode's ratio map (over the
// configured window), serializes it, and delivers it to the service —
// the "application library" deployment style of §III.B. Delivery goes
// through the wire format even in-process, so a report travels exactly
// as it would over a network.
#pragma once

#include <cstdint>
#include <string>

#include "core/node.hpp"
#include "service/position_service.hpp"
#include "sim/event_scheduler.hpp"

namespace crp::service {

struct ServiceNodeConfig {
  /// Window of recent probes published (kAllProbes = everything).
  std::size_t window = 30;
  /// How often the node republishes its position.
  Duration publish_interval = Minutes(30);
};

class ServiceNode {
 public:
  /// `node` and `service` must outlive this object.
  ServiceNode(std::string node_id, core::CrpNode& node,
              PositionService& service, ServiceNodeConfig config = {});

  /// Publishes the current map once. Returns false if the node has no
  /// redirections yet or the service rejected the report.
  bool publish_now(SimTime now);

  /// Schedules probe-then-publish rounds on `sched` until `end`:
  /// the CrpNode keeps its own probing cadence; this only republishes.
  sim::EventHandle schedule(sim::EventScheduler& sched, SimTime start,
                            SimTime end);

  [[nodiscard]] const std::string& node_id() const { return node_id_; }
  [[nodiscard]] std::uint64_t publishes() const { return publishes_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  std::string node_id_;
  core::CrpNode* node_;
  PositionService* service_;
  ServiceNodeConfig config_;
  std::uint64_t publishes_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace crp::service
