#include "meridian/overlay.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "../test_util.hpp"

namespace crp::meridian {
namespace {

class OverlayTest : public ::testing::Test {
 protected:
  OverlayTest() : world_{61} {}

  MeridianOverlay make_overlay(FaultSpec faults = {}) {
    MeridianConfig config;
    config.seed = 5;
    MeridianOverlay overlay{*world_.oracle, world_.infra, config, faults};
    overlay.bootstrap(SimTime::epoch());
    return overlay;
  }

  test::MiniWorld world_;
};

TEST_F(OverlayTest, BootstrapPopulatesRings) {
  MeridianOverlay overlay = make_overlay();
  std::size_t with_peers = 0;
  for (HostId h : overlay.members()) {
    if (overlay.node(h).peer_count() > 0) ++with_peers;
  }
  EXPECT_GT(with_peers, overlay.members().size() * 3 / 4);
  EXPECT_GT(overlay.total_probes(), 0u);
}

TEST_F(OverlayTest, GossipSpreadsKnowledge) {
  MeridianConfig config;
  config.seed = 5;
  MeridianOverlay overlay{*world_.oracle, world_.infra, config};
  overlay.bootstrap(SimTime::epoch(), /*gossip_rounds=*/0);
  std::size_t before = 0;
  for (HostId h : overlay.members()) before += overlay.node(h).peer_count();
  for (int r = 0; r < 6; ++r) {
    overlay.gossip_round(SimTime::epoch() + Minutes(r));
  }
  std::size_t after = 0;
  for (HostId h : overlay.members()) after += overlay.node(h).peer_count();
  EXPECT_GT(after, before);
}

TEST_F(OverlayTest, ClosestNodeFindsGoodCandidate) {
  MeridianOverlay overlay = make_overlay();
  const SimTime t = SimTime::epoch() + Hours(1);
  // For several targets, Meridian should select a member much closer than
  // the median member.
  int good = 0;
  int total = 0;
  for (std::size_t c = 0; c < 10; ++c) {
    const HostId target = world_.clients[c];
    Rng rng{static_cast<std::uint64_t>(c)};
    const HostId entry = overlay.random_entry(rng);
    const QueryResult result = overlay.closest_node(entry, target, t);

    std::vector<double> all;
    for (HostId m : overlay.members()) {
      all.push_back(world_.oracle->base_rtt_ms(m, target));
    }
    std::sort(all.begin(), all.end());
    const double achieved =
        world_.oracle->base_rtt_ms(result.selected, target);
    ++total;
    if (achieved <= all[all.size() / 4]) ++good;  // top quartile
  }
  EXPECT_GE(good, total * 6 / 10);
}

TEST_F(OverlayTest, QueriesCostProbes) {
  MeridianOverlay overlay = make_overlay();
  const std::uint64_t before = overlay.total_probes();
  Rng rng{1};
  (void)overlay.closest_node(overlay.random_entry(rng), world_.clients[0],
                             SimTime::epoch() + Hours(1));
  EXPECT_GT(overlay.total_probes(), before);
}

TEST_F(OverlayTest, SelfishEntryReturnsItself) {
  FaultSpec faults;
  faults.selfish_fraction = 1.0;  // everyone selfish
  faults.selfish_duration = Hours(7);
  MeridianOverlay overlay = make_overlay(faults);
  const HostId entry = overlay.members().front();
  const QueryResult result = overlay.closest_node(
      entry, world_.clients[0], SimTime::epoch() + Hours(1));
  EXPECT_EQ(result.selected, entry);
  EXPECT_TRUE(result.fault_affected);
  EXPECT_EQ(result.probes, 0);
}

TEST_F(OverlayTest, SelfishStateExpiresAfterDuration) {
  FaultSpec faults;
  faults.selfish_fraction = 1.0;
  faults.selfish_duration = Hours(7);
  MeridianOverlay overlay = make_overlay(faults);
  const HostId entry = overlay.members().front();
  const QueryResult result = overlay.closest_node(
      entry, world_.clients[0], SimTime::epoch() + Hours(10));
  EXPECT_FALSE(result.fault_affected);
}

TEST_F(OverlayTest, DeadNodesNeverSelected) {
  FaultSpec faults;
  faults.dead_fraction = 0.3;
  MeridianOverlay overlay = make_overlay(faults);
  EXPECT_LT(overlay.live_member_count(), overlay.members().size());
  const SimTime t = SimTime::epoch() + Hours(1);
  Rng rng{2};
  for (int i = 0; i < 10; ++i) {
    const QueryResult result = overlay.closest_node(
        overlay.random_entry(rng), world_.clients[static_cast<std::size_t>(i)],
        t);
    EXPECT_NE(overlay.node(result.selected).state(), NodeState::kDead);
  }
}

TEST_F(OverlayTest, PartitionedNodesKnowOnlyTheirSite) {
  FaultSpec faults;
  faults.partitioned_fraction = 0.4;
  MeridianOverlay overlay = make_overlay(faults);
  for (HostId h : overlay.members()) {
    if (overlay.node(h).state() == NodeState::kPartitioned) {
      EXPECT_LE(overlay.node(h).peer_count(), 1u);
    }
  }
}

TEST_F(OverlayTest, ThrowsForNonMemberEntry) {
  MeridianOverlay overlay = make_overlay();
  EXPECT_THROW(
      (void)overlay.closest_node(world_.clients[0], world_.clients[1],
                                 SimTime::epoch()),
      std::invalid_argument);
}

TEST_F(OverlayTest, ThrowsOnEmptyMembership) {
  EXPECT_THROW(MeridianOverlay(*world_.oracle, {}, MeridianConfig{}),
               std::invalid_argument);
}

TEST_F(OverlayTest, HopsBounded) {
  MeridianOverlay overlay = make_overlay();
  Rng rng{3};
  for (int i = 0; i < 10; ++i) {
    const QueryResult result = overlay.closest_node(
        overlay.random_entry(rng),
        world_.clients[static_cast<std::size_t>(i)],
        SimTime::epoch() + Hours(2));
    EXPECT_LE(result.hops, 16);
  }
}

}  // namespace
}  // namespace crp::meridian
