
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_relative_error.cpp" "bench-build/CMakeFiles/fig5_relative_error.dir/fig5_relative_error.cpp.o" "gcc" "bench-build/CMakeFiles/fig5_relative_error.dir/fig5_relative_error.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/crp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/crp_service.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/crp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/crp_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/king/CMakeFiles/crp_king.dir/DependInfo.cmake"
  "/root/repo/build/src/meridian/CMakeFiles/crp_meridian.dir/DependInfo.cmake"
  "/root/repo/build/src/asn/CMakeFiles/crp_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/crp_coord.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/crp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/crp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/crp_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/crp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/crp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
