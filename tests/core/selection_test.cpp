#include "core/selection.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "common/rng.hpp"

namespace crp::core {
namespace {

RatioMap map_of(std::vector<std::pair<ReplicaId, double>> entries) {
  return RatioMap::from_ratios(entries);
}

class SelectionTest : public ::testing::Test {
 protected:
  SelectionTest() {
    client_ = map_of({{ReplicaId{1}, 0.2}, {ReplicaId{2}, 0.8}});
    candidates_.push_back(map_of({{ReplicaId{1}, 0.6}, {ReplicaId{2}, 0.4}}));
    candidates_.push_back(map_of({{ReplicaId{1}, 0.1}, {ReplicaId{2}, 0.9}}));
    candidates_.push_back(map_of({{ReplicaId{9}, 1.0}}));  // disjoint
  }

  RatioMap client_;
  std::vector<RatioMap> candidates_;
};

TEST_F(SelectionTest, RankOrdersBySimilarityDescending) {
  const auto ranked = rank_candidates(client_, candidates_);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].index, 1u);  // paper's node C analog
  EXPECT_EQ(ranked[1].index, 0u);
  EXPECT_EQ(ranked[2].index, 2u);
  EXPECT_GT(ranked[0].similarity, ranked[1].similarity);
  EXPECT_DOUBLE_EQ(ranked[2].similarity, 0.0);
}

TEST_F(SelectionTest, TopKClamped) {
  EXPECT_EQ(select_top_k(client_, candidates_, 2).size(), 2u);
  EXPECT_EQ(select_top_k(client_, candidates_, 10).size(), 3u);
  EXPECT_EQ(select_top_k(client_, candidates_, 0).size(), 0u);
}

TEST_F(SelectionTest, SelectClosestMatchesRankTop) {
  EXPECT_EQ(select_closest(client_, candidates_), 1u);
}

TEST_F(SelectionTest, SelectClosestEmptyCandidates) {
  EXPECT_EQ(select_closest(client_, std::span<const RatioMap>{}),
            std::nullopt);
}

TEST_F(SelectionTest, ComparableCountExcludesDisjoint) {
  EXPECT_EQ(comparable_count(client_, candidates_), 2u);
}

TEST_F(SelectionTest, EmptyClientMapMakesNothingComparable) {
  EXPECT_EQ(comparable_count(RatioMap{}, candidates_), 0u);
  // Still returns an answer deterministically (first index).
  EXPECT_EQ(select_closest(RatioMap{}, candidates_), 0u);
}

TEST_F(SelectionTest, TieBreaksByInputIndex) {
  // Two identical candidates: stable sort keeps input order.
  std::vector<RatioMap> cands{candidates_[0], candidates_[0]};
  const auto ranked = rank_candidates(client_, cands);
  EXPECT_EQ(ranked[0].index, 0u);
  EXPECT_EQ(ranked[1].index, 1u);
}

TEST_F(SelectionTest, WorksWithAlternativeMetrics) {
  const auto cosine =
      rank_candidates(client_, candidates_, SimilarityKind::kCosine);
  const auto jaccard =
      rank_candidates(client_, candidates_, SimilarityKind::kJaccard);
  // Under Jaccard the two overlapping candidates tie (same replica sets).
  EXPECT_DOUBLE_EQ(jaccard[0].similarity, jaccard[1].similarity);
  EXPECT_GT(cosine[0].similarity, cosine[1].similarity);
}

// Property: the top-1 pick maximizes similarity over random inputs.
TEST(SelectionProperty, Top1MaximizesSimilarity) {
  Rng rng{123};
  for (int trial = 0; trial < 100; ++trial) {
    const auto random_map = [&rng] {
      std::vector<RatioMap::Entry> entries;
      const int n = static_cast<int>(rng.uniform_int(1, 6));
      for (int i = 0; i < n; ++i) {
        entries.emplace_back(ReplicaId{static_cast<std::uint32_t>(
                                 rng.uniform_int(0, 9))},
                             rng.uniform(0.05, 1.0));
      }
      return RatioMap::from_ratios(entries);
    };
    const RatioMap client = random_map();
    std::vector<RatioMap> candidates;
    for (int i = 0; i < 8; ++i) candidates.push_back(random_map());

    const std::size_t best = select_closest(client, candidates).value();
    const double best_sim = cosine_similarity(client, candidates[best]);
    for (const RatioMap& c : candidates) {
      ASSERT_LE(cosine_similarity(client, c), best_sim + 1e-12);
    }
  }
}

}  // namespace
}  // namespace crp::core
