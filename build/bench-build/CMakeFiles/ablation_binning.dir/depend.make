# Empty dependencies file for ablation_binning.
# This may be replaced when dependencies are built.
