#include "core/engine_snapshot.hpp"

namespace crp::core {

void EngineSnapshot::scores(const RatioMap& query, std::span<double> out,
                            std::size_t* touched_maps) const {
  engine_detail::dense_scores(view(), engine_detail::as_query(query), out,
                              touched_maps);
}

std::vector<double> EngineSnapshot::scores(const RatioMap& query) const {
  std::vector<double> out(size());
  scores(query, out);
  return out;
}

void EngineSnapshot::scores(const RowView& query, std::span<double> out,
                            std::size_t* touched_maps) const {
  engine_detail::dense_scores(view(), query, out, touched_maps);
}

void EngineSnapshot::scores_of(std::size_t index, std::span<double> out,
                               std::size_t* touched_maps) const {
  engine_detail::dense_scores(view(), row_view(index), out, touched_maps);
}

std::vector<double> EngineSnapshot::scores_of(std::size_t index) const {
  std::vector<double> out(size());
  scores_of(index, out);
  return out;
}

void EngineSnapshot::scores_subset(const RatioMap& query,
                                   std::span<const std::size_t> subset,
                                   std::span<double> out,
                                   std::size_t* touched_maps) const {
  engine_detail::subset_scores(view(), engine_detail::as_query(query), subset,
                               out, touched_maps);
}

void EngineSnapshot::scores_of_subset(std::size_t index,
                                      std::span<const std::size_t> subset,
                                      std::span<double> out,
                                      std::size_t* touched_maps) const {
  engine_detail::subset_scores(view(), row_view(index), subset, out,
                               touched_maps);
}

std::optional<RankedCandidate> EngineSnapshot::best_match(
    const RowView& query, std::size_t* touched_maps) const {
  return engine_detail::best_match(view(), query, touched_maps);
}

std::vector<RankedCandidate> EngineSnapshot::rank_all(
    const RatioMap& query) const {
  return engine_detail::rank_all(view(), engine_detail::as_query(query));
}

std::vector<RankedCandidate> EngineSnapshot::top_k(const RatioMap& query,
                                                   std::size_t k) const {
  std::vector<RankedCandidate> out;
  engine_detail::top_k_into(view(), engine_detail::as_query(query), k, out);
  return out;
}

std::size_t EngineSnapshot::comparable_count(const RatioMap& query) const {
  return engine_detail::comparable_count(view(),
                                         engine_detail::as_query(query));
}

FlatMatrix<double> EngineSnapshot::scores_batch(
    std::span<const RatioMap> queries, ThreadPool* pool,
    std::uint64_t* maps_touched, std::size_t tile) const {
  std::vector<RowView> refs;
  refs.reserve(queries.size());
  for (const RatioMap& q : queries) refs.push_back(engine_detail::as_query(q));
  FlatMatrix<double> out(queries.size(), size());  // zero-initialised
  engine_detail::scores_batch(view(), refs, out, pool, maps_touched, tile);
  return out;
}

void EngineSnapshot::scores_of_batch(std::span<const std::size_t> rows,
                                     FlatMatrix<double>& out,
                                     ThreadPool* pool,
                                     std::uint64_t* maps_touched,
                                     std::size_t tile) const {
  std::vector<RowView> refs;
  refs.reserve(rows.size());
  for (const std::size_t index : rows) refs.push_back(row_view(index));
  out.assign(rows.size(), size(), 0.0);
  engine_detail::scores_batch(view(), refs, out, pool, maps_touched, tile);
}

std::vector<std::vector<RankedCandidate>> EngineSnapshot::topk_batch(
    std::span<const RatioMap> queries, std::size_t k, ThreadPool* pool,
    std::uint64_t* maps_touched, std::size_t tile) const {
  std::vector<RowView> refs;
  refs.reserve(queries.size());
  for (const RatioMap& q : queries) refs.push_back(engine_detail::as_query(q));
  return engine_detail::topk_batch(view(), refs, k, pool, maps_touched, tile);
}

}  // namespace crp::core
