// Vivaldi decentralized network coordinates (Dabek et al., SIGCOMM 2004).
//
// Referenced by the paper as one of the coordinate systems Meridian was
// shown to outperform; implemented here as an extension baseline for the
// ablation benches. Nodes embed into a low-dimensional Euclidean space
// plus a non-negative "height" (access-link) component via spring
// relaxation with the adaptive timestep of the original paper.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "netsim/latency_model.hpp"

namespace crp::coord {

struct VivaldiConfig {
  std::uint64_t seed = 31;
  int dimensions = 2;
  /// Adaptive timestep constants (cc) and error-weight constant (ce).
  double cc = 0.25;
  double ce = 0.25;
  /// Neighbours sampled per node per round.
  int neighbors_per_round = 4;
  /// Multiplicative probe noise (log-normal sigma).
  double probe_noise_sigma = 0.04;
};

struct Coordinate {
  std::vector<double> position;
  double height = 0.0;
  /// Local error estimate in [0, 1].
  double error = 1.0;
};

class VivaldiSystem {
 public:
  /// `oracle` must outlive the system.
  VivaldiSystem(const netsim::LatencyOracle& oracle,
                std::vector<HostId> hosts, VivaldiConfig config = {});

  /// Runs `rounds` synchronous update rounds; measurements are taken at
  /// `start` + round index minutes.
  void run(int rounds, SimTime start);

  /// Coordinate-space distance estimate between nodes i and j (ms).
  [[nodiscard]] double estimate_ms(std::size_t i, std::size_t j) const;

  [[nodiscard]] const Coordinate& coordinate(std::size_t i) const {
    return coords_.at(i);
  }
  [[nodiscard]] std::size_t size() const { return hosts_.size(); }
  [[nodiscard]] const std::vector<HostId>& hosts() const { return hosts_; }

  /// Total probes issued (Vivaldi's measurement cost).
  [[nodiscard]] std::uint64_t total_probes() const { return total_probes_; }

 private:
  void update(std::size_t i, std::size_t j, double measured_ms);

  const netsim::LatencyOracle* oracle_;
  std::vector<HostId> hosts_;
  VivaldiConfig config_;
  std::vector<Coordinate> coords_;
  Rng rng_;
  std::uint64_t total_probes_ = 0;
};

}  // namespace crp::coord
