// Ablation: similarity metric and SMF seeding order.
//
// 1. Closest-node selection under cosine (the paper's metric), Jaccard
//    (sets only) and weighted overlap (frequencies without
//    normalization).
// 2. SMF clustering with strongest-mappings-first vs random center
//    seeding, and with/without the second pass.
#include <iostream>

#include "bench_util.hpp"
#include "clustering_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "eval/series.hpp"

int main() {
  using namespace crp;
  constexpr std::uint64_t kSeed = 31337;

  eval::print_banner(std::cout,
                     "Similarity-metric and SMF-seeding ablation",
                     "design ablation (§III.B metric choice, §V.B SMF)",
                     kSeed);

  // --- Part 1: selection metric ---
  bench::Scale scale = bench::Scale::from_env();
  scale.dns_servers = std::min<std::size_t>(scale.dns_servers, 300);
  scale.candidates = std::min<std::size_t>(scale.candidates, 120);
  bench::SelectionExperiment exp{kSeed, scale};

  TextTable selection;
  selection.header({"similarity metric", "mean rank", "median rank",
                    "mean RTT (ms)"});
  for (core::SimilarityKind kind :
       {core::SimilarityKind::kCosine, core::SimilarityKind::kJaccard,
        core::SimilarityKind::kWeightedOverlap}) {
    const auto outcomes = eval::evaluate_crp_selection(
        *exp.gt, exp.client_maps, exp.candidate_maps, 1, kind);
    const Summary r = summarize(eval::ranks_of(outcomes));
    const Summary l = summarize(eval::rtts_of(outcomes));
    selection.row({core::to_string(kind), fmt(r.mean), fmt(r.median),
                   fmt(l.mean)});
  }
  std::cout << "\nclosest-node selection by metric:\n" << selection.render();

  // --- Part 2: SMF variants ---
  std::fprintf(stderr, "--- clustering experiment ---\n");
  bench::ClusteringExperiment cexp{kSeed + 1};

  TextTable clustering;
  clustering.header({"SMF variant (t=0.1)", "% nodes clustered",
                     "# clusters", "good clusters (<75ms)"});
  struct Variant {
    const char* label;
    core::SmfConfig::Seeding seeding;
    bool second_pass;
  };
  for (const Variant& v : {
           Variant{"strongest-first + 2nd pass",
                   core::SmfConfig::Seeding::kStrongestFirst, true},
           Variant{"strongest-first, no 2nd pass",
                   core::SmfConfig::Seeding::kStrongestFirst, false},
           Variant{"random seeding + 2nd pass",
                   core::SmfConfig::Seeding::kRandom, true},
           Variant{"random seeding, no 2nd pass",
                   core::SmfConfig::Seeding::kRandom, false},
       }) {
    core::SmfConfig config;
    config.threshold = 0.1;
    config.seeding = v.seeding;
    config.second_pass = v.second_pass;
    config.seed = kSeed + 9;
    const auto result = core::smf_cluster(cexp.maps, config);
    const auto stats = core::clustering_stats(result, cexp.maps.size());
    const auto qualities = core::filter_by_diameter(
        core::evaluate_clusters(result, cexp.distance()), 75.0);
    std::size_t good = 0;
    for (const auto& q : qualities) {
      if (q.good()) ++good;
    }
    clustering.row({v.label, fmt_pct(stats.fraction_clustered),
                    fmt(stats.num_clusters), fmt(good)});
  }
  std::cout << "\nSMF clustering variants:\n" << clustering.render();
  std::cout << "\nreading: cosine dominates Jaccard (frequencies carry "
               "information) and is\ncomparable to weighted overlap; "
               "strongest-mappings-first seeding with the\nsecond pass "
               "(the paper's hybrid) clusters the most nodes without "
               "hurting quality.\n";
  return 0;
}
