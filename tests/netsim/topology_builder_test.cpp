#include "netsim/topology_builder.hpp"

#include <gtest/gtest.h>

#include <set>

namespace crp::netsim {
namespace {

TEST(TopologyBuilder, DefaultWorldHasElevenRegions) {
  const auto regions = default_world_regions();
  EXPECT_EQ(regions.size(), 11u);
  // Coverage must be uneven — that's what produces the paper's tails.
  double min_cov = 1e9;
  double max_cov = -1e9;
  for (const Region& r : regions) {
    min_cov = std::min(min_cov, r.cdn_coverage);
    max_cov = std::max(max_cov, r.cdn_coverage);
  }
  EXPECT_LT(min_cov, 0.3);
  EXPECT_GE(max_cov, 1.0);
}

TEST(TopologyBuilder, BuildsAsesProportionalToWeight) {
  TopologyConfig config;
  config.seed = 5;
  const Topology topo = build_topology(config);
  EXPECT_EQ(topo.num_regions(), 11u);
  EXPECT_GT(topo.num_ases(), 50u);
  EXPECT_GT(topo.num_pops(), topo.num_ases());  // every AS has >= 2 pops
  // Each region got at least one AS.
  std::set<RegionId> regions_with_as;
  for (const AutonomousSystem& as : topo.ases()) {
    regions_with_as.insert(as.region);
  }
  EXPECT_EQ(regions_with_as.size(), topo.num_regions());
}

TEST(TopologyBuilder, DeterministicForSeed) {
  TopologyConfig config;
  config.seed = 11;
  const Topology a = build_topology(config);
  const Topology b = build_topology(config);
  ASSERT_EQ(a.num_pops(), b.num_pops());
  for (std::size_t i = 0; i < a.num_pops(); ++i) {
    EXPECT_EQ(a.pops()[i].location.lat_deg, b.pops()[i].location.lat_deg);
  }
}

TEST(TopologyBuilder, SeedChangesLayout) {
  TopologyConfig c1;
  c1.seed = 1;
  TopologyConfig c2;
  c2.seed = 2;
  const Topology a = build_topology(c1);
  const Topology b = build_topology(c2);
  bool any_differs = a.num_pops() != b.num_pops();
  for (std::size_t i = 0; !any_differs && i < a.num_pops(); ++i) {
    any_differs = a.pops()[i].location.lat_deg != b.pops()[i].location.lat_deg;
  }
  EXPECT_TRUE(any_differs);
}

TEST(TopologyBuilder, PopsStayWithinRegionRadius) {
  TopologyConfig config;
  config.seed = 3;
  const Topology topo = build_topology(config);
  for (const Pop& pop : topo.pops()) {
    const Region& region = topo.region(pop.region);
    EXPECT_LE(great_circle_km(region.center, pop.location),
              region.radius_km * 1.01);
  }
}

TEST(TopologyBuilder, TierFractionsRoughlyRespected) {
  TopologyConfig config;
  config.seed = 17;
  const Topology topo = build_topology(config);
  std::size_t tier1 = 0;
  for (const AutonomousSystem& as : topo.ases()) {
    ASSERT_GE(as.tier, 1);
    ASSERT_LE(as.tier, 3);
    if (as.tier == 1) ++tier1;
  }
  const double frac =
      static_cast<double>(tier1) / static_cast<double>(topo.num_ases());
  EXPECT_GT(frac, 0.02);
  EXPECT_LT(frac, 0.25);
}

TEST(PlaceHosts, CountAndKind) {
  TopologyConfig config;
  config.seed = 7;
  Topology topo = build_topology(config);
  Rng rng{42};
  const auto hosts =
      place_hosts(topo, HostKind::kDnsResolver, 50, rng);
  EXPECT_EQ(hosts.size(), 50u);
  for (HostId h : hosts) {
    EXPECT_EQ(topo.host(h).kind, HostKind::kDnsResolver);
    EXPECT_GT(topo.host(h).access_one_way_ms, 0.0);
    EXPECT_FALSE(topo.host(h).name.empty());
  }
}

TEST(PlaceHosts, PopulationWeightBiasesPlacement) {
  TopologyConfig config;
  config.seed = 9;
  Topology topo = build_topology(config);
  Rng rng{43};
  const auto hosts = place_hosts(topo, HostKind::kClient, 800, rng);
  // Count hosts in the heaviest (weight 3.0) vs lightest (0.5) regions.
  std::size_t heavy = 0;
  std::size_t light = 0;
  for (HostId h : hosts) {
    const auto& name = topo.region(topo.host(h).region).name;
    if (name == "na-east" || name == "eu-west") ++heavy;
    if (name == "africa-south") ++light;
  }
  EXPECT_GT(heavy, light * 2);
}

TEST(PlaceHosts, ReplicaAccessLatencyIsTiny) {
  TopologyConfig config;
  config.seed = 13;
  Topology topo = build_topology(config);
  Rng rng{44};
  const HostId replica = place_host_at_pop(
      topo, HostKind::kReplicaServer, topo.pops()[0].id, rng);
  const HostId client = place_host_at_pop(
      topo, HostKind::kClient, topo.pops()[0].id, rng);
  EXPECT_LT(topo.host(replica).access_one_way_ms,
            topo.host(client).access_one_way_ms);
}

TEST(PlaceHostsInRegions, RestrictsToNamedRegions) {
  TopologyConfig config;
  config.seed = 31;
  Topology topo = build_topology(config);
  Rng rng{45};
  const auto hosts = place_hosts_in_regions(
      topo, HostKind::kInfraNode, 40, rng, {"na-east", "eu-west"});
  EXPECT_EQ(hosts.size(), 40u);
  for (HostId h : hosts) {
    const auto& name = topo.region(topo.host(h).region).name;
    EXPECT_TRUE(name == "na-east" || name == "eu-west") << name;
  }
}

TEST(PlaceHostsInRegions, ThrowsOnUnknownRegion) {
  TopologyConfig config;
  config.seed = 32;
  Topology topo = build_topology(config);
  Rng rng{46};
  EXPECT_THROW((void)place_hosts_in_regions(topo, HostKind::kClient, 5, rng,
                                            {"atlantis"}),
               std::invalid_argument);
}

}  // namespace
}  // namespace crp::netsim
