#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace crp {

namespace {

/// Shared state of one parallel_for call. Participants (workers and the
/// caller) grab chunks from `next` until the range is exhausted; the last
/// participant to leave wakes the caller.
struct ForState {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t)>* body = nullptr;

  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t active = 0;  // participants that have not finished yet
  std::exception_ptr error;

  void run() {
    while (true) {
      const std::size_t lo = next.fetch_add(grain);
      if (lo >= end) break;
      const std::size_t hi = std::min(end, lo + grain);
      try {
        for (std::size_t i = lo; i < hi; ++i) (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock{mu};
        if (!error) error = std::current_exception();
      }
    }
  }

  void participate() {
    run();
    std::lock_guard<std::mutex> lock{mu};
    if (--active == 0) done_cv.notify_all();
  }
};

/// Set for the lifetime of a worker thread. A parallel_for issued from
/// inside a body running on a worker of the same pool runs inline instead
/// of enqueueing: workers must never block on the queue they drain.
thread_local const ThreadPool* tl_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::ThreadPool()
    : ThreadPool(std::max(1u, std::thread::hardware_concurrency())) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock{mu_};
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  tl_worker_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock{mu_};
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  if (workers_.empty() || n == 1 || tl_worker_pool == this) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->next.store(begin);
  state->end = end;
  // Small chunks keep the load balanced when per-index cost varies; the
  // factor keeps chunk-claim contention negligible.
  state->grain = std::max<std::size_t>(1, n / (4 * (workers_.size() + 1)));
  state->body = &body;

  // The caller participates too, so at most `workers` helpers are useful.
  const std::size_t chunks = (n + state->grain - 1) / state->grain;
  const std::size_t helpers = std::min(workers_.size(), chunks);
  state->active = helpers + 1;
  {
    std::lock_guard<std::mutex> lock{mu_};
    for (std::size_t i = 0; i < helpers; ++i) {
      queue_.emplace_back([state] { state->participate(); });
    }
  }
  cv_.notify_all();

  state->run();
  {
    std::unique_lock<std::mutex> lock{state->mu};
    if (--state->active == 0) {
      state->done_cv.notify_all();
    } else {
      state->done_cv.wait(lock, [&state] { return state->active == 0; });
    }
  }
  if (state->error) std::rethrow_exception(state->error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace crp
