# Empty compiler generated dependencies file for crp_king.
# This may be replaced when dependencies are built.
