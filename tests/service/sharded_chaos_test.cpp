// Shard-fault tolerance for the sharded serving tier (DESIGN.md §7/§9):
// deterministic stalls and crashes, per-shard circuit breakers, degraded
// scatter/gather over stale fallbacks, and anti-entropy crash recovery.
//
// Two contracts anchor everything here. Inertness: with no armed fault
// plan (or an empty one) the fault-aware frontend answers bit-identical
// to one that never heard of faults — for every query kind, shard
// count, metric and pool size. Determinism: every fault draw is a pure
// hash, so a faulted sharded campaign reproduces bit-for-bit across
// pool sizes and runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "eval/world.hpp"
#include "service/gossip.hpp"
#include "service/position_service.hpp"
#include "service/sharded_frontend.hpp"
#include "service/wire.hpp"
#include "sim/fault_plan.hpp"

namespace crp::service {
namespace {

core::RatioMap random_map(Rng& rng, std::uint32_t id_space = 24) {
  std::vector<core::RatioMap::Entry> entries;
  const int k = static_cast<int>(rng.uniform_int(1, 6));
  for (int j = 0; j < k; ++j) {
    entries.emplace_back(
        ReplicaId{static_cast<std::uint32_t>(rng.uniform_int(0, id_space - 1))},
        rng.uniform(0.05, 1.0));
  }
  return core::RatioMap::from_ratios(entries);
}

PositionReport report_of(std::string id, core::RatioMap map, SimTime when) {
  PositionReport r;
  r.node_id = std::move(id);
  r.when = when;
  r.map = std::move(map);
  return r;
}

void expect_same_ranked(const std::vector<RankedNode>& got,
                        const std::vector<RankedNode>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].node_id, want[i].node_id) << "rank " << i;
    EXPECT_EQ(got[i].similarity, want[i].similarity) << "rank " << i;
  }
}

void expect_same_tiered(const TieredAnswer& got, const TieredAnswer& want) {
  EXPECT_EQ(got.tier, want.tier);
  EXPECT_EQ(got.reason, want.reason);
  expect_same_ranked(got.ranked, want.ranked);
}

/// An id that stable-hashes onto `shard` of `shard_count`.
std::string id_on_shard(std::size_t shard, std::size_t shard_count,
                        int salt = 0) {
  for (int i = 0;; ++i) {
    std::string id =
        "sn-" + std::to_string(salt) + "-" + std::to_string(i);
    if (ShardedFrontend::shard_index(id, shard_count) == shard) return id;
  }
}

constexpr SimTime kT0 = SimTime::epoch();

// ---------------------------------------------------------------------
// Inertness: empty plan + healthy shards == the fault-blind frontend.
// ---------------------------------------------------------------------

void run_inertness_oracle(std::size_t shards, core::SimilarityKind metric,
                          std::size_t workers) {
  SCOPED_TRACE(::testing::Message()
               << "shards=" << shards << " metric=" << static_cast<int>(metric)
               << " workers=" << workers);
  ServiceConfig cfg;
  cfg.metric = metric;
  cfg.stale_usable_bound = Hours(12);
  ShardedFrontendConfig fc;
  fc.shards = shards;
  fc.service = cfg;
  ShardedFrontend plain{fc};  // never hears about faults
  ShardedFrontend armed{fc};  // armed with an empty plan
  const sim::FaultPlan empty_plan{123};
  armed.set_fault_plan(&empty_plan);  // empty ⇒ stays inert
  EXPECT_EQ(armed.fault_plan(), nullptr);

  Rng rng{900 + shards};
  std::vector<std::string> ids;
  for (int i = 0; i < 40; ++i) {
    const std::string id = "in-" + std::to_string(i);
    const auto map = random_map(rng);
    const SimTime when = kT0 + Minutes(i * 11);
    EXPECT_EQ(plain.publish(report_of(id, map, when), when),
              armed.publish(report_of(id, map, when), when));
    ids.push_back(id);
  }
  ThreadPool pool{workers};
  const SimTime now = kT0 + Hours(7);
  const auto pv = plain.view();
  const auto av = armed.view();
  EXPECT_EQ(av.live_nodes(now), pv.live_nodes(now));
  for (std::size_t i = 0; i < ids.size(); i += 7) {
    SCOPED_TRACE("client " + ids[i]);
    expect_same_ranked(av.closest_any(ids[i], 5, now, &pool),
                       pv.closest_any(ids[i], 5, now, &pool));
    // The gathered query is the tiered query plus a completeness
    // vector; on a healthy view the tiered halves must match bit for
    // bit and the completeness must be full.
    const auto gathered = av.closest_any_gathered(ids[i], 5, now, &pool);
    expect_same_tiered(gathered.tiered,
                       pv.closest_any_tiered(ids[i], 5, now, &pool));
    EXPECT_TRUE(gathered.completeness.complete());
    EXPECT_FALSE(gathered.completeness.any_stale());
    EXPECT_EQ(gathered.completeness.shards_answered, shards);
    const auto gathered_cand =
        av.closest_gathered(ids[i], ids, 5, now, &pool);
    expect_same_tiered(gathered_cand.tiered,
                       pv.closest_tiered(ids[i], ids, 5, now, &pool));
    EXPECT_TRUE(gathered_cand.completeness.complete());
  }
  // Nothing degraded, nothing counted.
  const auto hs = armed.health_stats();
  EXPECT_EQ(hs.breaker_opens, 0u);
  EXPECT_EQ(hs.writes_shed, 0u);
  EXPECT_EQ(hs.writes_failed, 0u);
  EXPECT_EQ(hs.shard_crashes, 0u);
  EXPECT_EQ(hs.stale_fallback_views, 0u);
  EXPECT_EQ(hs.degraded_answers, 0u);
  EXPECT_EQ(hs.partial_answers, 0u);
}

TEST(ShardedChaos, InertAcrossShardCounts) {
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    run_inertness_oracle(shards, core::SimilarityKind::kCosine, 2);
  }
}

TEST(ShardedChaos, InertAcrossMetricsAndPools) {
  run_inertness_oracle(4, core::SimilarityKind::kJaccard, 2);
  run_inertness_oracle(4, core::SimilarityKind::kWeightedOverlap, 2);
  for (const std::size_t workers :
       {std::size_t{0}, std::size_t{1}, std::size_t{4}}) {
    run_inertness_oracle(4, core::SimilarityKind::kCosine, workers);
  }
}

// ---------------------------------------------------------------------
// Breaker lifecycle under a scheduled stall.
// ---------------------------------------------------------------------

TEST(ShardedChaos, StallTripsBreakerThenHalfOpenRecloses) {
  ShardedFrontendConfig fc;
  fc.shards = 4;
  ShardedFrontend fe{fc};
  Rng rng{17};
  // Populate every shard, then stall shard 0 unconditionally for a
  // window long enough that backoff-advanced retries stay inside it.
  std::vector<std::string> on0;
  for (int i = 0; i < 4; ++i) on0.push_back(id_on_shard(0, 4, i));
  const std::string off0 = id_on_shard(1, 4);
  for (const auto& id : on0) {
    ASSERT_TRUE(fe.publish(report_of(id, random_map(rng), kT0), kT0));
  }
  ASSERT_TRUE(fe.publish(report_of(off0, random_map(rng), kT0), kT0));

  const SimTime stall_from = kT0 + Hours(1);
  const SimTime stall_to = kT0 + Hours(2);
  sim::FaultPlan plan{77};
  plan.add({.kind = sim::FaultKind::kShardStall,
            .start = stall_from,
            .end = stall_to,
            .probability = 1.0,
            .entity = 0});
  fe.set_fault_plan(&plan);
  ASSERT_EQ(fe.fault_plan(), &plan);

  // Three failed writes (each with its retries exhausted) trip the
  // breaker; the fourth is shed without an attempt.
  SimTime t = stall_from;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(fe.shard_health(0), ShardHealth::kClosed);
    EXPECT_FALSE(fe.publish(report_of(on0[0], random_map(rng), t), t));
    t = t + Minutes(1);
  }
  EXPECT_EQ(fe.shard_health(0), ShardHealth::kOpen);
  EXPECT_FALSE(fe.publish(report_of(on0[1], random_map(rng), t), t));
  auto hs = fe.health_stats();
  EXPECT_EQ(hs.breaker_opens, 1u);
  EXPECT_EQ(hs.writes_failed, 3u);
  EXPECT_EQ(hs.write_retries, 6u);  // 2 retries per failed write
  EXPECT_EQ(hs.writes_shed, 1u);
  // Other shards are untouched.
  EXPECT_TRUE(fe.publish(report_of(off0, random_map(rng), t), t));
  EXPECT_EQ(fe.shard_health(1), ShardHealth::kClosed);

  // Reads keep working: the open shard serves its pre-stall fallback.
  const auto view = fe.view();
  EXPECT_EQ(view.shard_health(0), ShardHealth::kOpen);
  EXPECT_FALSE(view.closest_any(on0[0], 3, t).empty());
  const auto gathered = fe.closest_any_gathered(off0, 3, t);
  EXPECT_EQ(gathered.tiered.tier, AnswerTier::kStale);
  EXPECT_EQ(gathered.tiered.reason, DegradedReason::kStaleShard);
  EXPECT_TRUE(gathered.completeness.complete());
  EXPECT_TRUE(gathered.completeness.stale_shards[0]);
  EXPECT_GT(fe.health_stats().stale_fallback_views, 0u);
  EXPECT_GT(fe.health_stats().degraded_answers, 0u);

  // Past the window and the cooldown, a tick moves the breaker to
  // half-open; two probe successes re-close it.
  const SimTime probe_at = stall_to + Hours(1);
  fe.tick(probe_at);
  EXPECT_EQ(fe.shard_health(0), ShardHealth::kHalfOpen);
  EXPECT_TRUE(
      fe.publish(report_of(on0[2], random_map(rng), probe_at), probe_at));
  EXPECT_EQ(fe.shard_health(0), ShardHealth::kHalfOpen);
  EXPECT_TRUE(
      fe.publish(report_of(on0[3], random_map(rng), probe_at), probe_at));
  EXPECT_EQ(fe.shard_health(0), ShardHealth::kClosed);
  hs = fe.health_stats();
  EXPECT_EQ(hs.breaker_half_opens, 1u);
  EXPECT_EQ(hs.breaker_closes, 1u);
  // Healthy again: views stop substituting the fallback.
  const auto healthy = fe.closest_any_gathered(off0, 3, probe_at);
  EXPECT_EQ(healthy.tiered.tier, AnswerTier::kFresh);
  EXPECT_FALSE(healthy.completeness.any_stale());
}

// ---------------------------------------------------------------------
// Crash: keep answering, then rebuild bit-identical by replay.
// ---------------------------------------------------------------------

TEST(ShardedChaos, CrashKeepsAnsweringAndReplayMatchesNeverCrashedTwin) {
  ServiceConfig cfg;
  cfg.stale_usable_bound = Hours(12);
  ShardedFrontendConfig fc;
  fc.shards = 4;
  fc.service = cfg;
  ShardedFrontend fe{fc};
  ShardedFrontend twin{fc};  // never crashes, same feed

  Rng rng{31};
  std::vector<std::string> ids;
  std::vector<std::string> frames;
  for (int i = 0; i < 48; ++i) {
    const std::string id = "cr-" + std::to_string(i);
    // Feed both frontends through the wire so the replay frames decode
    // to exactly the maps the twin holds (decode re-normalizes, so a
    // raw publish and a wire round trip differ in the ratios' low
    // bits).
    const auto bytes = encode(report_of(id, random_map(rng), kT0));
    ASSERT_TRUE(bytes.has_value());
    ASSERT_TRUE(fe.publish_encoded(*bytes, kT0));
    ASSERT_TRUE(twin.publish_encoded(*bytes, kT0));
    frames.push_back(*bytes);
    ids.push_back(id);
  }
  const std::size_t crashed = 2;
  std::string client_on_crashed;
  std::string client_elsewhere;
  for (const auto& id : ids) {
    if (fe.shard_of(id) == crashed) client_on_crashed = id;
    if (fe.shard_of(id) != crashed) client_elsewhere = id;
  }
  ASSERT_FALSE(client_on_crashed.empty());
  ASSERT_FALSE(client_elsewhere.empty());

  const SimTime crash_at = kT0 + Minutes(30);
  sim::FaultPlan plan{55};
  plan.add({.kind = sim::FaultKind::kShardCrash,
            .start = crash_at,
            .end = crash_at + Minutes(1),
            .probability = 1.0,
            .entity = crashed});
  fe.set_fault_plan(&plan);

  fe.tick(crash_at);
  EXPECT_EQ(fe.health_stats().shard_crashes, 1u);
  EXPECT_EQ(fe.shard(crashed).size(), 0u);  // state really gone
  EXPECT_EQ(fe.shard_health(crashed), ShardHealth::kOpen);
  ASSERT_EQ(fe.shards_needing_recovery(),
            std::vector<std::size_t>{crashed});

  // Degraded serving: plain answers equal the twin's (the fallback IS
  // the pre-crash snapshot), never empty-by-crash; gathered answers are
  // typed kStale/kStaleShard with the crashed shard flagged.
  const SimTime now = crash_at + Minutes(5);
  expect_same_ranked(fe.closest_any(client_on_crashed, 6, now),
                     twin.closest_any(client_on_crashed, 6, now));
  expect_same_ranked(fe.closest_any(client_elsewhere, 6, now),
                     twin.closest_any(client_elsewhere, 6, now));
  const auto degraded = fe.closest_any_gathered(client_on_crashed, 6, now);
  EXPECT_EQ(degraded.tiered.tier, AnswerTier::kStale);
  EXPECT_EQ(degraded.tiered.reason, DegradedReason::kStaleShard);
  EXPECT_TRUE(degraded.completeness.complete());
  EXPECT_TRUE(degraded.completeness.stale_shards[crashed]);
  expect_same_ranked(
      degraded.tiered.ranked,
      twin.closest_any_tiered(client_on_crashed, 6, now).ranked);

  // Recovery: replay the full feed (frames owned by other shards are
  // filtered out), then the rebuilt shard must match the never-crashed
  // twin's shard bit for bit.
  const SimTime recovered_at = kT0 + Hours(1);
  const std::size_t accepted =
      fe.recover_shard(crashed, frames, recovered_at);
  EXPECT_EQ(accepted, twin.shard(crashed).size());
  EXPECT_EQ(fe.shard_health(crashed), ShardHealth::kClosed);
  EXPECT_TRUE(fe.shards_needing_recovery().empty());
  EXPECT_EQ(fe.health_stats().recovery_replays, accepted);
  EXPECT_EQ(fe.shard(crashed).live_nodes(recovered_at),
            twin.shard(crashed).live_nodes(recovered_at));
  const auto fe_snap = fe.shard(crashed).snapshot();
  const auto twin_snap = twin.shard(crashed).snapshot();
  EXPECT_EQ(fe_snap->live_nodes(recovered_at),
            twin_snap->live_nodes(recovered_at));
  // And the whole frontend answers as if the crash never happened.
  for (const auto& c : {client_on_crashed, client_elsewhere}) {
    expect_same_ranked(fe.closest_any(c, 8, recovered_at),
                       twin.closest_any(c, 8, recovered_at));
    const auto after = fe.closest_any_gathered(c, 8, recovered_at);
    EXPECT_EQ(after.tiered.tier, AnswerTier::kFresh);
    EXPECT_TRUE(after.completeness.complete());
    EXPECT_FALSE(after.completeness.any_stale());
  }
}

TEST(ShardedChaos, ExpiredFallbackGoesMissingAndOwnerRefusesTyped) {
  ServiceConfig cfg;  // no stale tier: usable bound == staleness bound
  ShardedFrontendConfig fc;
  fc.shards = 4;
  fc.service = cfg;
  ShardedFrontend fe{fc};
  Rng rng{41};
  std::vector<std::string> ids;
  for (int i = 0; i < 24; ++i) {
    const std::string id = "mx-" + std::to_string(i);
    ASSERT_TRUE(fe.publish(report_of(id, random_map(rng), kT0), kT0));
    ids.push_back(id);
  }
  const std::size_t crashed = 1;
  std::string on_crashed, elsewhere;
  for (const auto& id : ids) {
    (fe.shard_of(id) == crashed ? on_crashed : elsewhere) = id;
  }
  ASSERT_FALSE(on_crashed.empty());
  ASSERT_FALSE(elsewhere.empty());
  sim::FaultPlan plan{66};
  const SimTime crash_at = kT0 + Minutes(10);
  plan.add({.kind = sim::FaultKind::kShardCrash,
            .start = crash_at,
            .end = crash_at + Minutes(1),
            .probability = 1.0,
            .entity = crashed});
  fe.set_fault_plan(&plan);
  fe.tick(crash_at);

  // Far past the usable bound the fallback is too old to serve: the
  // shard goes missing, answers turn partial, and a client owned by it
  // refuses with the typed shard-unavailable reason. The reports
  // elsewhere are expired too by then, so query a time where only the
  // fallback's age (vs the fresher shards' re-published reports)
  // differs: republish the healthy shards first.
  const SimTime later = kT0 + Hours(7);  // past the 6h staleness bound
  for (const auto& id : ids) {
    if (fe.shard_of(id) == crashed) continue;
    ASSERT_TRUE(
        fe.publish(report_of(id, random_map(rng), later), later));
  }
  const auto partial = fe.closest_any_gathered(elsewhere, 6, later);
  EXPECT_EQ(partial.tiered.tier, AnswerTier::kFresh);
  EXPECT_FALSE(partial.completeness.complete());
  EXPECT_EQ(partial.completeness.missing_shards,
            std::vector<std::size_t>{crashed});
  EXPECT_FALSE(partial.tiered.ranked.empty());
  EXPECT_GT(fe.health_stats().partial_answers, 0u);

  const auto refused = fe.closest_any_gathered(on_crashed, 6, later);
  EXPECT_EQ(refused.tiered.tier, AnswerTier::kRefused);
  EXPECT_EQ(refused.tiered.reason, DegradedReason::kShardUnavailable);
  EXPECT_TRUE(refused.tiered.ranked.empty());
}

// ---------------------------------------------------------------------
// Anti-entropy repair over the gossip wire path.
// ---------------------------------------------------------------------

TEST(ShardedChaos, GossipRepairRebuildsCrashedShardFromPeers) {
  GossipConfig gc;
  gc.seed = 5;
  gc.fanout = 2;
  gc.reports_per_message = 16;
  gc.store_shards = 4;
  GossipMesh mesh{gc};
  for (const char* id : {"alpha", "beta", "gamma"}) mesh.add_node(id);
  mesh.fully_connect();
  Rng rng{77};
  std::vector<std::string> members;
  for (int i = 0; i < 18; ++i) {
    members.push_back("g-" + std::to_string(i));
  }
  // Publish each member's report into every node's store, as a
  // converged mesh would hold it.
  for (const auto& id : members) {
    const auto map = random_map(rng);
    for (const char* nid : {"alpha", "beta", "gamma"}) {
      ASSERT_TRUE(mesh.sharded_store(nid).publish(report_of(id, map, kT0),
                                                  kT0));
    }
  }
  ShardedFrontend& alpha = mesh.sharded_store("alpha");
  const std::size_t crashed = 3;
  sim::FaultPlan plan{88};
  const SimTime crash_at = kT0 + Minutes(20);
  plan.add({.kind = sim::FaultKind::kShardCrash,
            .start = crash_at,
            .end = crash_at + Minutes(1),
            .probability = 1.0,
            .entity = crashed});
  alpha.set_fault_plan(&plan);
  alpha.tick(crash_at);
  ASSERT_EQ(alpha.shards_needing_recovery(),
            std::vector<std::size_t>{crashed});
  const auto want = mesh.sharded_store("beta").shard(crashed).live_nodes(
      crash_at);
  ASSERT_FALSE(want.empty());

  const std::size_t accepted = mesh.repair_shards("alpha", crash_at);
  // Both peers contribute a copy of every owned report; duplicates are
  // accepted (equal timestamps re-publish) and the freshness rules keep
  // one per id, so the replay count is a multiple of the population.
  EXPECT_GE(accepted, want.size());
  EXPECT_TRUE(alpha.shards_needing_recovery().empty());
  EXPECT_EQ(alpha.shard_health(crashed), ShardHealth::kClosed);
  EXPECT_EQ(alpha.shard(crashed).live_nodes(crash_at), want);
  const auto& gs = mesh.stats();
  EXPECT_GT(gs.repair_reports_sent, 0u);
  EXPECT_GT(gs.repair_bytes, 0u);
  // Nothing to repair ⇒ a second call is a no-op.
  EXPECT_EQ(mesh.repair_shards("alpha", crash_at), 0u);
}

// ---------------------------------------------------------------------
// Faulted sharded campaign: bit-identical across pools and per seed.
// ---------------------------------------------------------------------

struct ChaosDigest {
  std::vector<std::size_t> accepted;
  std::vector<std::uint64_t> shed;
  std::vector<std::uint64_t> failed;
  std::uint64_t crashes = 0;
  std::uint64_t opens = 0;
  std::vector<std::string> live;
  std::vector<RankedNode> ranked;

  bool operator==(const ChaosDigest& o) const {
    if (accepted != o.accepted || shed != o.shed || failed != o.failed ||
        crashes != o.crashes || opens != o.opens || live != o.live ||
        ranked.size() != o.ranked.size()) {
      return false;
    }
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      if (ranked[i].node_id != o.ranked[i].node_id ||
          ranked[i].similarity != o.ranked[i].similarity) {
        return false;
      }
    }
    return true;
  }
};

ChaosDigest run_faulted_campaign(std::uint64_t seed, std::size_t workers) {
  eval::WorldConfig config;
  config.seed = seed;
  config.num_candidates = 8;
  config.num_dns_servers = 12;
  config.cdn.target_replicas = 100;
  const SimTime end = kT0 + Hours(4);
  config.faults =
      sim::FaultPlan::shard_chaos(seed + 9, 0.9, kT0 + Minutes(30), end);
  eval::World world{std::move(config)};
  ThreadPool pool{workers};
  world.run_probing_parallel(kT0, kT0 + Hours(1), Minutes(20), &pool);

  ShardedFrontendConfig fc;
  fc.shards = 4;
  ShardedFrontend fe{fc};
  ChaosDigest digest;
  SimTime t = kT0 + Hours(1);
  for (int round = 0; round < 8; ++round) {
    const auto delivery = world.report_positions(fe, t, &pool);
    digest.accepted.push_back(delivery.accepted);
    digest.shed.push_back(delivery.shard_writes_shed);
    digest.failed.push_back(delivery.shard_writes_failed);
    t = t + Minutes(15);
  }
  const auto hs = fe.health_stats();
  digest.crashes = hs.shard_crashes;
  digest.opens = hs.breaker_opens;
  digest.live = fe.live_nodes(t);
  if (!digest.live.empty()) {
    digest.ranked = fe.closest_any(digest.live[0], 8, t, &pool);
  }
  return digest;
}

TEST(ShardedChaos, FaultedCampaignBitIdenticalAcrossPoolsAndSeeds) {
  for (const std::uint64_t seed : {9001ULL, 77017ULL}) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    const ChaosDigest sequential = run_faulted_campaign(seed, 0);
    // Faults must actually bite for the determinism claim to mean
    // anything.
    EXPECT_GT(sequential.opens + sequential.crashes, 0u);
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE(::testing::Message() << "workers=" << workers);
      EXPECT_TRUE(run_faulted_campaign(seed, workers) == sequential);
    }
  }
}

// ---------------------------------------------------------------------
// Breaker transitions under concurrent readers (TSan's target).
// ---------------------------------------------------------------------

TEST(ShardedChaos, BreakerTransitionsUnderConcurrentReaders) {
  ShardedFrontendConfig fc;
  fc.shards = 4;
  ShardedFrontend fe{fc};
  Rng rng{1234};
  std::vector<std::string> ids;
  for (int i = 0; i < 24; ++i) {
    const std::string id = "t-" + std::to_string(i);
    ASSERT_TRUE(fe.publish(report_of(id, random_map(rng), kT0), kT0));
    ids.push_back(id);
  }
  const SimTime stall_from = kT0 + Minutes(10);
  sim::FaultPlan plan{3};
  plan.add({.kind = sim::FaultKind::kShardStall,
            .start = stall_from,
            .end = stall_from + Minutes(30),
            .probability = 1.0,
            .entity = 0});
  plan.add({.kind = sim::FaultKind::kShardCrash,
            .start = stall_from + Minutes(40),
            .end = stall_from + Minutes(41),
            .probability = 1.0,
            .entity = 2});
  fe.set_fault_plan(&plan);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rd{static_cast<std::uint64_t>(100 + r)};
      while (!stop.load(std::memory_order_acquire)) {
        const auto view = fe.view();
        const auto& client = ids[static_cast<std::size_t>(
            rd.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1))];
        const SimTime now = kT0 + Hours(2);
        (void)view.closest_any(client, 4, now);
        (void)view.closest_any_gathered(client, 4, now);
        (void)view.completeness(now);
        (void)fe.health_stats();
        (void)fe.shard_health(0);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Writer drives the breaker through open (stall), crash, half-open
  // and close while the readers churn.
  SimTime t = stall_from;
  for (int i = 0; i < 6; ++i) {
    (void)fe.publish(report_of(ids[0], random_map(rng), t), t);
    t = t + Minutes(2);
  }
  fe.tick(stall_from + Minutes(40));  // crash shard 2
  std::vector<std::string> frames;
  for (const auto& id : ids) {
    const auto rep = fe.report_of(id);
    if (!rep.has_value()) continue;
    if (auto bytes = encode(*rep)) frames.push_back(std::move(*bytes));
  }
  (void)fe.recover_shard(2, frames, stall_from + Minutes(42));
  t = stall_from + Hours(1);
  fe.tick(t);  // half-open shard 0
  for (int i = 0; i < 4; ++i) {
    (void)fe.publish(report_of(ids[1], random_map(rng), t), t);
    t = t + Minutes(1);
  }
  while (reads.load(std::memory_order_relaxed) < 200) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_EQ(fe.shard_health(2), ShardHealth::kClosed);
}

}  // namespace
}  // namespace crp::service
