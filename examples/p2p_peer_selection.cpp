// Example: BitTorrent-style peer selection with CRP clustering.
//
// The paper's motivating scenario (§IV.B): a swarming peer-to-peer system
// wants each node to peer with low-RTT neighbours to cut latency and
// often improve throughput — without the tracker probing anything.
//
// This example builds a swarm of 120 peers, clusters them with SMF over
// their CDN redirection maps, and compares the RTT of cluster-mate peers
// against randomly assigned peers (classic tracker behaviour).
//
// Build & run:  cmake --build build && ./build/examples/p2p_peer_selection
#include <cstdio>
#include <vector>

#include "common/stats.hpp"
#include "core/cluster_quality.hpp"
#include "core/clustering.hpp"
#include "core/similarity_engine.hpp"
#include "eval/world.hpp"

int main() {
  using namespace crp;

  eval::WorldConfig config;
  config.seed = 7;
  config.num_candidates = 2;  // no server role in a swarm
  config.num_dns_servers = 120;
  config.cdn.target_replicas = 600;

  std::printf("building swarm world (120 peers)...\n");
  eval::World world{config};
  world.run_probing(SimTime::epoch(), SimTime::epoch() + Hours(24),
                    Minutes(10));

  // Every peer's position is its ratio map — collected passively from
  // the DNS lookups its user's browser was doing anyway.
  std::vector<core::RatioMap> maps;
  std::vector<HostId> peers{world.dns_servers().begin(),
                            world.dns_servers().end()};
  for (HostId h : peers) maps.push_back(world.crp_node(h).ratio_map());

  // One engine serves both the clustering and the per-peer suggestions
  // below — the corpus is indexed once, not once per use.
  core::SmfConfig smf;
  smf.threshold = 0.1;
  const core::SimilarityEngine engine{maps, smf.metric};
  const core::Clustering clustering = core::smf_cluster(engine, smf);
  const auto stats = core::clustering_stats(clustering, peers.size());
  std::printf("SMF clustering: %zu clusters, %zu/%zu peers clustered\n",
              stats.num_clusters, stats.nodes_clustered, peers.size());

  // Compare peering RTTs: cluster-mates vs random choice.
  OnlineStats cluster_rtt;
  OnlineStats random_rtt;
  Rng rng{99};
  for (std::size_t i = 0; i < peers.size(); ++i) {
    const auto& cluster =
        clustering.clusters[clustering.assignment[i]];
    for (std::size_t j : cluster.members) {
      if (j == i) continue;
      cluster_rtt.add(world.ground_truth_rtt_ms(peers[i], peers[j]));
    }
    for (int k = 0; k < 3; ++k) {
      const auto j = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(peers.size()) - 1));
      if (j == i) continue;
      random_rtt.add(world.ground_truth_rtt_ms(peers[i], peers[j]));
    }
  }

  std::printf("\npeer RTT, cluster-mate selection: mean %.1f ms\n",
              cluster_rtt.mean());
  std::printf("peer RTT, random (tracker) selection: mean %.1f ms\n",
              random_rtt.mean());
  std::printf("improvement: %.1fx lower RTT, using zero probes\n",
              random_rtt.mean() / cluster_rtt.mean());

  // Peers SMF left unclustered still get a suggestion: their most
  // similar live peer, answered by the same engine the clustering used.
  std::printf("\nclosest-peer suggestions for unclustered peers:\n");
  std::size_t suggested = 0;
  for (std::size_t i = 0; i < peers.size() && suggested < 3; ++i) {
    if (clustering.clusters[clustering.assignment[i]].members.size() > 1) {
      continue;
    }
    for (const auto& candidate : engine.top_k(maps[i], 2)) {
      if (candidate.index == i) continue;
      std::printf("  %s -> %s (similarity %.3f, rtt %.1f ms)\n",
                  world.topology().host(peers[i]).name.c_str(),
                  world.topology().host(peers[candidate.index]).name.c_str(),
                  candidate.similarity,
                  world.ground_truth_rtt_ms(peers[i], peers[candidate.index]));
      ++suggested;
      break;
    }
  }

  // Third clustering query from §IV.B: pick n peers in *different*
  // clusters for failure-independent replication.
  std::printf("\nfailure-independent peer set (one per cluster):\n");
  std::size_t shown = 0;
  for (const auto& cluster : clustering.clusters) {
    if (cluster.members.size() < 2 || shown >= 5) continue;
    const HostId h = peers[cluster.center];
    std::printf("  %s (%s)\n", world.topology().host(h).name.c_str(),
                world.topology()
                    .region(world.topology().host(h).region)
                    .name.c_str());
    ++shown;
  }
  return 0;
}
