#include "core/name_filter.hpp"

#include <gtest/gtest.h>

namespace crp::core {
namespace {

NameObservations obs(const char* name,
                     std::vector<std::vector<std::uint32_t>> probes) {
  NameObservations o;
  o.name = dns::Name::parse(name);
  for (const auto& probe : probes) {
    std::vector<ReplicaId> ids;
    for (std::uint32_t id : probe) ids.emplace_back(id);
    o.probes.push_back(std::move(ids));
  }
  return o;
}

const FallbackCheckFn kFallbackAbove100 = [](ReplicaId id) {
  return id.value() >= 100;
};
const ReplicaPingFn kPingIdAsMs = [](ReplicaId id) {
  return static_cast<double>(id.value());
};

TEST(NameFilter, KeepsGoodName) {
  const auto qualities = evaluate_names(
      {obs("good.example", {{1, 2}, {2, 3}, {1, 3}})}, kFallbackAbove100,
      kPingIdAsMs);
  ASSERT_EQ(qualities.size(), 1u);
  EXPECT_TRUE(qualities[0].keep);
  EXPECT_EQ(qualities[0].distinct_replicas, 3u);
  ASSERT_TRUE(qualities[0].best_replica_rtt_ms.has_value());
  EXPECT_DOUBLE_EQ(*qualities[0].best_replica_rtt_ms, 1.0);
  EXPECT_DOUBLE_EQ(qualities[0].fallback_fraction, 0.0);
}

TEST(NameFilter, DropsNameDominatedByFallbacks) {
  const auto qualities = evaluate_names(
      {obs("fb.example", {{100, 101}, {100, 102}, {1, 2}})},
      kFallbackAbove100, kPingIdAsMs);
  EXPECT_FALSE(qualities[0].keep);
  EXPECT_NEAR(qualities[0].fallback_fraction, 4.0 / 6.0, 1e-12);
  EXPECT_EQ(qualities[0].reason, "answers dominated by origin fallbacks");
}

TEST(NameFilter, DropsNameWithNoNearbyReplica) {
  // All answered replicas ping above the 50 ms default threshold.
  const auto qualities = evaluate_names(
      {obs("far.example", {{60, 70}, {80, 90}})}, kFallbackAbove100,
      kPingIdAsMs);
  EXPECT_FALSE(qualities[0].keep);
  EXPECT_EQ(qualities[0].reason,
            "no low-latency replica (poor local coverage)");
}

TEST(NameFilter, DropsNameWithTooFewReplicas) {
  const auto qualities = evaluate_names(
      {obs("mono.example", {{5}, {5}, {5}})}, kFallbackAbove100,
      kPingIdAsMs);
  EXPECT_FALSE(qualities[0].keep);
  EXPECT_EQ(qualities[0].reason, "too few distinct replicas");
}

TEST(NameFilter, DropsNameWithNoObservations) {
  const auto qualities = evaluate_names({obs("dead.example", {})},
                                        kFallbackAbove100, kPingIdAsMs);
  EXPECT_FALSE(qualities[0].keep);
  EXPECT_EQ(qualities[0].reason, "no redirections observed");
}

TEST(NameFilter, PassiveModeSkipsPingRule) {
  // Without a ping function, a far-but-diverse name is kept (rule 1 is
  // the only one that needs active probing).
  const auto qualities = evaluate_names(
      {obs("far.example", {{60, 70}, {80, 90}})}, kFallbackAbove100,
      /*ping=*/nullptr);
  EXPECT_TRUE(qualities[0].keep);
  EXPECT_FALSE(qualities[0].best_replica_rtt_ms.has_value());
}

TEST(NameFilter, ConfigurableThresholds) {
  NameFilterConfig lenient;
  lenient.max_best_rtt_ms = 1000.0;
  lenient.max_fallback_fraction = 1.0;
  lenient.min_distinct_replicas = 1;
  const auto qualities = evaluate_names(
      {obs("fb.example", {{100, 101}}), obs("mono.example", {{5}})},
      kFallbackAbove100, kPingIdAsMs, lenient);
  EXPECT_TRUE(qualities[0].keep);
  EXPECT_TRUE(qualities[1].keep);
}

TEST(NameFilter, KeptNamesPreservesOrder) {
  const auto qualities = evaluate_names(
      {obs("a.example", {{1, 2}}), obs("dead.example", {}),
       obs("b.example", {{3, 4}})},
      kFallbackAbove100, kPingIdAsMs);
  const auto names = kept_names(qualities);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], dns::Name::parse("a.example"));
  EXPECT_EQ(names[1], dns::Name::parse("b.example"));
}

}  // namespace
}  // namespace crp::core
