// DNS resource records and messages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ipv4.hpp"
#include "common/time.hpp"
#include "dns/name.hpp"

namespace crp::dns {

enum class RecordType : std::uint8_t { kA, kCname, kNs };

[[nodiscard]] const char* to_string(RecordType type);

/// A single resource record. `address` is meaningful for A records,
/// `target` for CNAME/NS records.
struct ResourceRecord {
  Name name;
  RecordType type = RecordType::kA;
  Duration ttl = Seconds(60);
  Ipv4 address;
  Name target;

  static ResourceRecord a(Name name, Ipv4 address, Duration ttl);
  static ResourceRecord cname(Name name, Name target, Duration ttl);
  static ResourceRecord ns(Name name, Name target, Duration ttl);

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const ResourceRecord&,
                         const ResourceRecord&) = default;
};

enum class Rcode : std::uint8_t { kNoError, kNxDomain, kServFail };

[[nodiscard]] const char* to_string(Rcode rcode);

struct Question {
  Name name;
  RecordType type = RecordType::kA;

  friend bool operator==(const Question&, const Question&) = default;
};

/// Simplified DNS message (response side).
struct Message {
  std::uint16_t id = 0;
  Question question;
  Rcode rcode = Rcode::kNoError;
  std::vector<ResourceRecord> answers;

  /// All A-record addresses in the answer section, in order.
  [[nodiscard]] std::vector<Ipv4> addresses() const;
};

}  // namespace crp::dns
