// Equivalence of the parallel probing campaign with the sequential
// event-scheduler campaign (DESIGN.md §6): for every redirection policy
// and every pool size — including the 0-thread inline pool — the two
// paths must produce byte-for-byte identical results: ratio maps,
// per-resolver cache counters, and CDN-side query counts.
#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "eval/world.hpp"

namespace crp::eval {
namespace {

WorldConfig small_config(PolicyKind kind, std::uint64_t seed = 21) {
  WorldConfig config;
  config.seed = seed;
  config.num_candidates = 10;
  config.num_dns_servers = 18;
  config.cdn.target_replicas = 100;
  config.policy_kind = kind;
  return config;
}

struct CampaignDigest {
  struct PerNode {
    core::RatioMap ratio_map;
    std::size_t num_probes = 0;
    std::size_t failed_lookups = 0;
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;
    std::size_t queries_sent = 0;
  };
  std::vector<PerNode> nodes;
  std::size_t cdn_queries = 0;
  std::size_t rounds = 0;
};

CampaignDigest run_campaign(PolicyKind kind, std::uint64_t seed,
                            ThreadPool* pool, bool sequential) {
  World world{small_config(kind, seed)};
  const SimTime start = SimTime::epoch();
  const SimTime end = start + Hours(4);
  CampaignDigest digest;
  digest.rounds = sequential
                      ? world.run_probing_sequential(start, end, Minutes(30))
                      : world.run_probing_parallel(start, end, Minutes(30),
                                                   pool);
  for (HostId h : world.participants()) {
    const core::CrpNode& node = world.crp_node(h);
    const dns::RecursiveResolver& resolver = world.resolver(h);
    digest.nodes.push_back({node.ratio_map(), node.history().num_probes(),
                            node.failed_lookups(), resolver.cache_hits(),
                            resolver.cache_misses(),
                            resolver.queries_sent()});
  }
  digest.cdn_queries = world.cdn_queries_served();
  return digest;
}

void expect_identical(const CampaignDigest& a, const CampaignDigest& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.cdn_queries, b.cdn_queries);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    SCOPED_TRACE("participant index " + std::to_string(i));
    EXPECT_EQ(a.nodes[i].ratio_map, b.nodes[i].ratio_map);
    EXPECT_EQ(a.nodes[i].num_probes, b.nodes[i].num_probes);
    EXPECT_EQ(a.nodes[i].failed_lookups, b.nodes[i].failed_lookups);
    EXPECT_EQ(a.nodes[i].cache_hits, b.nodes[i].cache_hits);
    EXPECT_EQ(a.nodes[i].cache_misses, b.nodes[i].cache_misses);
    EXPECT_EQ(a.nodes[i].queries_sent, b.nodes[i].queries_sent);
  }
}

class CampaignEquivalence : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(CampaignEquivalence, ParallelMatchesSequential) {
  const PolicyKind kind = GetParam();
  const CampaignDigest sequential =
      run_campaign(kind, 21, nullptr, /*sequential=*/true);

  ThreadPool workers{4};
  const CampaignDigest parallel =
      run_campaign(kind, 21, &workers, /*sequential=*/false);
  expect_identical(sequential, parallel);

  // A 0-thread pool runs everything inline on the caller; same contract.
  ThreadPool inline_pool{0};
  const CampaignDigest inlined =
      run_campaign(kind, 21, &inline_pool, /*sequential=*/false);
  expect_identical(sequential, inlined);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, CampaignEquivalence,
    ::testing::Values(PolicyKind::kLatencyDriven, PolicyKind::kGeoStatic,
                      PolicyKind::kRandom, PolicyKind::kSticky),
    [](const ::testing::TestParamInfo<PolicyKind>& info) {
      switch (info.param) {
        case PolicyKind::kLatencyDriven: return "LatencyDriven";
        case PolicyKind::kGeoStatic: return "GeoStatic";
        case PolicyKind::kRandom: return "Random";
        case PolicyKind::kSticky: return "Sticky";
      }
      return "Unknown";
    });

TEST(CampaignStatsTest, FilledByParallelRun) {
  World world{small_config(PolicyKind::kLatencyDriven, 22)};
  ThreadPool workers{2};
  const std::size_t rounds = world.run_probing_parallel(
      SimTime::epoch(), SimTime::epoch() + Hours(2), Minutes(30), &workers);
  const CampaignStats& stats = world.campaign_stats();
  EXPECT_EQ(stats.rounds, rounds);
  EXPECT_EQ(stats.participants, world.participants().size());
  EXPECT_GT(stats.probes_issued, 0u);
  EXPECT_EQ(stats.threads, 2u);
  EXPECT_GT(stats.cdn_queries, 0u);
  EXPECT_GT(stats.resolver_cache_hits + stats.resolver_cache_misses, 0u);
  EXPECT_GE(stats.resolver_hit_rate(), 0.0);
  EXPECT_LE(stats.resolver_hit_rate(), 1.0);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.probes_per_second(), 0.0);
  // The campaign exercises the latency oracle heavily; with the pair
  // cache on (default) repeated pairs must hit.
  EXPECT_GT(stats.oracle_pair_hits, 0u);
  EXPECT_GT(stats.oracle_pair_hit_rate(), 0.0);
}

TEST(CampaignStatsTest, FilledBySequentialRun) {
  World world{small_config(PolicyKind::kLatencyDriven, 23)};
  const std::size_t rounds = world.run_probing_sequential(
      SimTime::epoch(), SimTime::epoch() + Hours(2), Minutes(30));
  const CampaignStats& stats = world.campaign_stats();
  EXPECT_EQ(stats.rounds, rounds);
  EXPECT_EQ(stats.threads, 0u);
  EXPECT_GT(stats.probes_issued, 0u);
  // Staggered nodes may miss the last round but never more than that.
  EXPECT_GE(stats.probes_issued, stats.participants * (rounds - 1));
  EXPECT_LE(stats.probes_issued, stats.participants * rounds);
}

}  // namespace
}  // namespace crp::eval
