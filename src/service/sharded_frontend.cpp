#include "service/sharded_frontend.hpp"

#include <algorithm>
#include <iterator>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/top_k.hpp"
#include "service/serving_detail.hpp"
#include "service/wire.hpp"

namespace crp::service {

using serving_detail::ScoredRef;
using serving_detail::better_ref;

namespace {

/// Merges per-shard top-k partials into the global top-k. Correctness
/// rests on the total order: any node in the global top-k beats all but
/// fewer than k others, so in particular fewer than k within its own
/// shard — it is in its shard's partial. The merge therefore never
/// misses a winner, and the order makes the result offer-order- (hence
/// shard-count-) independent.
std::vector<RankedNode> merge_partials(
    std::span<const std::vector<RankedNode>> partials, std::size_t k) {
  BoundedTopK<ScoredRef, decltype(&better_ref)> heap(k, &better_ref);
  for (const std::vector<RankedNode>& partial : partials) {
    for (const RankedNode& node : partial) {
      heap.offer(ScoredRef{&node.node_id, node.similarity});
    }
  }
  return serving_detail::materialize<RankedNode>(heap.take_sorted());
}

/// Batch form: merges client j's partials across every shard.
std::vector<RankedNode> merge_client(
    std::span<const std::vector<std::vector<RankedNode>>> partials,
    std::size_t j, std::size_t k) {
  BoundedTopK<ScoredRef, decltype(&better_ref)> heap(k, &better_ref);
  for (const auto& shard_partials : partials) {
    for (const RankedNode& node : shard_partials[j]) {
      heap.offer(ScoredRef{&node.node_id, node.similarity});
    }
  }
  return serving_detail::materialize<RankedNode>(heap.take_sorted());
}

}  // namespace

ShardedFrontend::ShardedFrontend(ShardedFrontendConfig config)
    : config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
  if (!config_.service.snapshots.enabled) {
    // The front-end answers from snapshots, so by default every
    // completed write must be visible to the next query — republish
    // after every accepted mutation. Callers that enabled snapshots
    // themselves keep their own pacing (and use the epoch vector to
    // bound what they are reading).
    config_.service.snapshots.enabled = true;
    config_.service.snapshots.max_epoch_lag = 1;
  }
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<PositionService>(config_.service));
    // Publish the empty snapshot so a View never holds a null — reads
    // before the first write answer empty, not undefined.
    (void)shards_.back()->publish_snapshot(SimTime::epoch());
  }
}

std::size_t ShardedFrontend::shard_index(std::string_view node_id,
                                         std::size_t shard_count) {
  if (shard_count <= 1) return 0;
  return static_cast<std::size_t>(stable_hash(node_id) % shard_count);
}

// --- writes ---

bool ShardedFrontend::publish(PositionReport report, SimTime now) {
  return shards_[shard_of(report.node_id)]->publish(std::move(report), now);
}

bool ShardedFrontend::publish_encoded(std::string_view bytes, SimTime now) {
  // Route by the peeked id; bytes whose header won't even peek go to
  // shard 0, whose full decode rejects and counts them.
  const auto id = peek_node_id(bytes);
  const std::size_t s = id.has_value() ? shard_of(*id) : 0;
  return shards_[s]->publish_encoded(bytes, now);
}

std::size_t ShardedFrontend::publish_batch(std::span<const std::string> batch,
                                           SimTime now, ThreadPool* pool) {
  if (shards_.size() == 1) {
    return shards_[0]->publish_batch(batch, now, pool);
  }
  std::vector<std::vector<std::string>> groups(shards_.size());
  for (const std::string& bytes : batch) {
    const auto id = peek_node_id(bytes);
    groups[id.has_value() ? shard_of(*id) : 0].push_back(bytes);
  }
  // Distinct shards are distinct single-writer domains, so the groups
  // apply in parallel; within a shard the group keeps batch order, so
  // per-id acceptance is exactly the sequential routing's. The nested
  // per-shard decode parallel_for runs inline on the worker.
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  std::vector<std::size_t> accepted(shards_.size(), 0);
  p.parallel_for(0, shards_.size(), [&](std::size_t s) {
    accepted[s] = shards_[s]->publish_batch(groups[s], now, &p);
  });
  std::size_t total = 0;
  for (const std::size_t a : accepted) total += a;
  return total;
}

bool ShardedFrontend::remove(const std::string& node_id) {
  return shards_[shard_of(node_id)]->remove(node_id);
}

std::size_t ShardedFrontend::expire(SimTime now) {
  std::size_t dropped = 0;
  for (const auto& shard : shards_) dropped += shard->expire(now);
  return dropped;
}

void ShardedFrontend::publish_snapshots(SimTime now) {
  for (const auto& shard : shards_) (void)shard->publish_snapshot(now);
}

// --- inspection ---

std::optional<core::RatioMap> ShardedFrontend::map_of(
    const std::string& node_id) const {
  return shards_[shard_of(node_id)]->map_of(node_id);
}

std::optional<PositionReport> ShardedFrontend::report_of(
    const std::string& node_id) const {
  return shards_[shard_of(node_id)]->report_of(node_id);
}

std::size_t ShardedFrontend::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

// --- epochs ---

std::vector<std::uint64_t> ShardedFrontend::write_epochs() const {
  std::vector<std::uint64_t> epochs;
  epochs.reserve(shards_.size());
  for (const auto& shard : shards_) {
    epochs.push_back(shard->membership_epoch());
  }
  return epochs;
}

std::uint64_t ShardedFrontend::epoch_lag(const View& view) const {
  std::uint64_t lag = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    lag = std::max(lag,
                   shards_[s]->membership_epoch() - view.epochs()[s]);
  }
  return lag;
}

// --- reads ---

ShardedFrontend::View ShardedFrontend::view() const {
  View v;
  v.snaps_.reserve(shards_.size());
  v.epochs_.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::shared_ptr<const ServingSnapshot> snap = shard->snapshot();
    v.epochs_.push_back(snap->membership_epoch());
    v.snaps_.push_back(std::move(snap));
  }
  return v;
}

std::size_t ShardedFrontend::View::shard_of(std::string_view node_id) const {
  return shard_index(node_id, snaps_.size());
}

std::size_t ShardedFrontend::View::size() const {
  std::size_t total = 0;
  for (const auto& snap : snaps_) total += snap->size();
  return total;
}

std::vector<std::string> ShardedFrontend::View::live_nodes(
    SimTime now) const {
  // Disjoint partitions, each already sorted per the live_nodes
  // contract — pairwise merges keep the union sorted.
  std::vector<std::string> merged;
  for (const auto& snap : snaps_) {
    std::vector<std::string> part = snap->live_nodes(now);
    if (merged.empty()) {
      merged = std::move(part);
      continue;
    }
    std::vector<std::string> next;
    next.reserve(merged.size() + part.size());
    std::merge(std::make_move_iterator(merged.begin()),
               std::make_move_iterator(merged.end()),
               std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()),
               std::back_inserter(next));
    merged = std::move(next);
  }
  return merged;
}

std::vector<RankedNode> ShardedFrontend::View::closest_any(
    const std::string& client, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  const std::size_t n = snaps_.size();
  if (n == 1) return snaps_[0]->closest_any(client, k, now);
  const std::size_t owner = shard_of(client);
  snaps_[owner]->count_queries();
  const auto res = snaps_[owner]->resident(client, now);
  if (!res.has_value() || !res->live) return {};
  std::vector<std::vector<RankedNode>> partials(n);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(0, n, [&](std::size_t s) {
    partials[s] = snaps_[s]->partial_closest_any(
        res->row, s == owner ? res->slot : ServingSnapshot::npos,
        /*stale_band=*/false, k, now);
  });
  return merge_partials(partials, k);
}

std::vector<RankedNode> ShardedFrontend::View::closest(
    const std::string& client, std::span<const std::string> candidates,
    std::size_t k, SimTime now, ThreadPool* pool) const {
  const std::size_t n = snaps_.size();
  if (n == 1) return snaps_[0]->closest(client, candidates, k, now);
  const std::size_t owner = shard_of(client);
  snaps_[owner]->count_queries();
  const auto res = snaps_[owner]->resident(client, now);
  if (!res.has_value() || !res->live) return {};
  std::vector<std::vector<RankedNode>> partials(n);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(0, n, [&](std::size_t s) {
    const auto vetted =
        snaps_[s]->vet_candidates(candidates, /*stale_band=*/false, now);
    partials[s] = snaps_[s]->partial_closest(
        res->row, s == owner ? res->slot : ServingSnapshot::npos, vetted, k);
  });
  return merge_partials(partials, k);
}

TieredAnswer ShardedFrontend::View::tiered_query(
    const std::string& client, std::span<const std::string> candidates,
    bool any, std::size_t k, SimTime now, ThreadPool* pool) const {
  const std::size_t n = snaps_.size();
  if (n == 1) {
    return any ? snaps_[0]->closest_any_tiered(client, k, now)
               : snaps_[0]->closest_tiered(client, candidates, k, now);
  }
  const std::size_t owner = shard_of(client);
  snaps_[owner]->count_queries();
  TieredAnswer out;
  const auto res = snaps_[owner]->resident(client, now);
  if (!res.has_value()) {
    out.reason = DegradedReason::kUnknownClient;
    snaps_[owner]->count_outcome(AnswerTier::kRefused);
    return out;
  }
  const bool fresh = res->live;
  if (!fresh && !res->stale_usable) {
    out.reason = DegradedReason::kClientExpired;
    snaps_[owner]->count_outcome(AnswerTier::kRefused);
    return out;
  }
  const bool stale_band = !fresh;
  std::vector<std::vector<RankedNode>> partials(n);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(0, n, [&](std::size_t s) {
    const std::size_t exclude =
        s == owner ? res->slot : ServingSnapshot::npos;
    if (any) {
      partials[s] = snaps_[s]->partial_closest_any(res->row, exclude,
                                                   stale_band, k, now);
    } else {
      const auto vetted =
          snaps_[s]->vet_candidates(candidates, stale_band, now);
      partials[s] =
          snaps_[s]->partial_closest(res->row, exclude, vetted, k);
    }
  });
  out.ranked = merge_partials(partials, k);
  if (out.ranked.empty()) {
    out.tier = AnswerTier::kRefused;
    out.reason = DegradedReason::kNoUsableCandidates;
    snaps_[owner]->count_outcome(AnswerTier::kRefused);
    return out;
  }
  out.tier = fresh ? AnswerTier::kFresh : AnswerTier::kStale;
  out.reason = fresh ? DegradedReason::kNone : DegradedReason::kStaleClient;
  snaps_[owner]->count_outcome(out.tier);
  return out;
}

TieredAnswer ShardedFrontend::View::closest_any_tiered(
    const std::string& client, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  return tiered_query(client, {}, /*any=*/true, k, now, pool);
}

TieredAnswer ShardedFrontend::View::closest_tiered(
    const std::string& client, std::span<const std::string> candidates,
    std::size_t k, SimTime now, ThreadPool* pool) const {
  return tiered_query(client, candidates, /*any=*/false, k, now, pool);
}

std::vector<RankedNode> ShardedFrontend::View::top_k(
    const core::RatioMap& query, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  const std::size_t n = snaps_.size();
  if (n == 1) return snaps_[0]->top_k(query, k, now);
  // The query owns no corpus row, so there is no owning shard; the
  // query itself counts on shard 0 (the partials' similarity work
  // counts on the shard that did it, as everywhere).
  snaps_[0]->count_queries();
  std::vector<std::vector<RankedNode>> partials(n);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(0, n, [&](std::size_t s) {
    partials[s] = snaps_[s]->partial_top_k(query, k, now);
  });
  return merge_partials(partials, k);
}

std::vector<std::vector<RankedNode>> ShardedFrontend::View::closest_batch(
    std::span<const std::string> clients, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  const std::size_t n = snaps_.size();
  if (n == 1) return snaps_[0]->closest_batch(clients, k, now, pool);
  std::vector<std::vector<RankedNode>> out(clients.size());
  std::vector<std::uint64_t> counts(n, 0);
  std::vector<ServingSnapshot::ExternalClient> ext;
  std::vector<std::size_t> result_at;
  ext.reserve(clients.size());
  result_at.reserve(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const std::size_t owner = shard_of(clients[i]);
    ++counts[owner];
    const auto res = snaps_[owner]->resident(clients[i], now);
    if (!res.has_value() || !res->live) continue;
    ext.push_back(
        ServingSnapshot::ExternalClient{res->row, owner, res->slot});
    result_at.push_back(i);
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (counts[s] != 0) snaps_[s]->count_queries(counts[s]);
  }
  if (ext.empty()) return out;
  // Scatter: one task per shard ranks every eligible client against its
  // partition (parallelism = shard count, the deployment's real
  // topology — one process per shard); gather: per-client merges fan
  // out over the same pool.
  std::vector<std::vector<std::vector<RankedNode>>> partials(n);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(0, n, [&](std::size_t s) {
    partials[s] = snaps_[s]->partial_closest_batch(ext, s, k, now);
  });
  p.parallel_for(0, ext.size(), [&](std::size_t j) {
    out[result_at[j]] = merge_client(partials, j, k);
  });
  return out;
}

std::vector<std::vector<RankedNode>> ShardedFrontend::View::closest_batch(
    std::span<const std::string> clients,
    std::span<const std::string> candidates, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  const std::size_t n = snaps_.size();
  if (n == 1) {
    return snaps_[0]->closest_batch(clients, candidates, k, now, pool);
  }
  std::vector<std::vector<RankedNode>> out(clients.size());
  std::vector<std::uint64_t> counts(n, 0);
  std::vector<ServingSnapshot::ExternalClient> ext;
  std::vector<std::size_t> result_at;
  ext.reserve(clients.size());
  result_at.reserve(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const std::size_t owner = shard_of(clients[i]);
    ++counts[owner];
    const auto res = snaps_[owner]->resident(clients[i], now);
    if (!res.has_value() || !res->live) continue;
    ext.push_back(
        ServingSnapshot::ExternalClient{res->row, owner, res->slot});
    result_at.push_back(i);
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (counts[s] != 0) snaps_[s]->count_queries(counts[s]);
  }
  if (ext.empty()) return out;
  std::vector<std::vector<std::vector<RankedNode>>> partials(n);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(0, n, [&](std::size_t s) {
    const auto vetted =
        snaps_[s]->vet_candidates(candidates, /*stale_band=*/false, now);
    partials[s] = snaps_[s]->partial_closest_batch(ext, s, vetted, k);
  });
  p.parallel_for(0, ext.size(), [&](std::size_t j) {
    out[result_at[j]] = merge_client(partials, j, k);
  });
  return out;
}

// --- frontend convenience wrappers (one View capture each) ---

std::vector<std::string> ShardedFrontend::live_nodes(SimTime now) const {
  return view().live_nodes(now);
}

std::vector<RankedNode> ShardedFrontend::closest(
    const std::string& client, std::span<const std::string> candidates,
    std::size_t k, SimTime now, ThreadPool* pool) const {
  return view().closest(client, candidates, k, now, pool);
}

std::vector<RankedNode> ShardedFrontend::closest_any(
    const std::string& client, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  return view().closest_any(client, k, now, pool);
}

TieredAnswer ShardedFrontend::closest_any_tiered(const std::string& client,
                                                 std::size_t k, SimTime now,
                                                 ThreadPool* pool) const {
  return view().closest_any_tiered(client, k, now, pool);
}

TieredAnswer ShardedFrontend::closest_tiered(
    const std::string& client, std::span<const std::string> candidates,
    std::size_t k, SimTime now, ThreadPool* pool) const {
  return view().closest_tiered(client, candidates, k, now, pool);
}

std::vector<RankedNode> ShardedFrontend::top_k(const core::RatioMap& query,
                                               std::size_t k, SimTime now,
                                               ThreadPool* pool) const {
  return view().top_k(query, k, now, pool);
}

std::vector<std::vector<RankedNode>> ShardedFrontend::closest_batch(
    std::span<const std::string> clients, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  return view().closest_batch(clients, k, now, pool);
}

std::vector<std::vector<RankedNode>> ShardedFrontend::closest_batch(
    std::span<const std::string> clients,
    std::span<const std::string> candidates, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  return view().closest_batch(clients, candidates, k, now, pool);
}

// --- stats ---

std::vector<ServiceStats> ShardedFrontend::shard_stats() const {
  std::vector<ServiceStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) stats.push_back(shard->stats());
  return stats;
}

ServiceStats ShardedFrontend::stats() const {
  return aggregate_stats(shard_stats());
}

}  // namespace crp::service
