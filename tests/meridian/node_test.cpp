#include "meridian/node.hpp"

#include <gtest/gtest.h>

namespace crp::meridian {
namespace {

RingConfig small_rings() {
  RingConfig config;
  config.num_rings = 5;
  config.innermost_ms = 2.0;
  config.ring_capacity = 3;
  return config;
}

TEST(MeridianNode, RingIndexBoundaries) {
  MeridianNode node{HostId{0}, small_rings()};
  // Ring 0: [0, 2), ring 1: [2, 4), ring 2: [4, 8), ring 3: [8, 16),
  // ring 4: [16, inf).
  EXPECT_EQ(node.ring_index(0.5), 0);
  EXPECT_EQ(node.ring_index(2.0), 0);  // boundary belongs below
  EXPECT_EQ(node.ring_index(2.1), 1);
  EXPECT_EQ(node.ring_index(5.0), 2);
  EXPECT_EQ(node.ring_index(10.0), 3);
  EXPECT_EQ(node.ring_index(1000.0), 4);  // clamped to outermost
}

TEST(MeridianNode, InsertPlacesInCorrectRing) {
  MeridianNode node{HostId{0}, small_rings()};
  EXPECT_EQ(node.insert(HostId{1}, 1.0), 0);
  EXPECT_EQ(node.insert(HostId{2}, 3.0), 1);
  EXPECT_EQ(node.insert(HostId{3}, 100.0), 4);
  EXPECT_TRUE(node.knows(HostId{1}));
  EXPECT_EQ(node.peer_count(), 3u);
}

TEST(MeridianNode, InsertIgnoresSelfAndDuplicates) {
  MeridianNode node{HostId{0}, small_rings()};
  EXPECT_EQ(node.insert(HostId{0}, 1.0), -1);
  EXPECT_EQ(node.insert(HostId{1}, 1.0), 0);
  EXPECT_EQ(node.insert(HostId{1}, 5.0), -1);  // already known
  EXPECT_EQ(node.peer_count(), 1u);
}

TEST(MeridianNode, ForgetRemovesFromRing) {
  MeridianNode node{HostId{0}, small_rings()};
  node.insert(HostId{1}, 1.0);
  node.forget(HostId{1});
  EXPECT_FALSE(node.knows(HostId{1}));
  EXPECT_TRUE(node.ring(0).empty());
  node.forget(HostId{99});  // unknown: no-op
}

TEST(MeridianNode, ResolveOverflowKeepsMostDiverse) {
  MeridianNode node{HostId{0}, small_rings()};
  // Fill ring 4 beyond capacity with peers 1..4; peers 1 and 2 are
  // mutually close (distance 1), the rest far apart.
  node.insert(HostId{1}, 20.0);
  node.insert(HostId{2}, 21.0);
  node.insert(HostId{3}, 25.0);
  node.insert(HostId{4}, 30.0);
  ASSERT_EQ(node.ring(4).size(), 4u);
  const auto rtt = [](HostId a, HostId b) {
    // Peers 1, 2 close together; 3 and 4 far from everyone.
    if ((a == HostId{1} && b == HostId{2}) ||
        (a == HostId{2} && b == HostId{1})) {
      return 1.0;
    }
    return 50.0;
  };
  node.resolve_overflow(4, rtt);
  EXPECT_EQ(node.ring(4).size(), 3u);
  // One of the redundant pair {1, 2} must have been dropped.
  EXPECT_FALSE(node.knows(HostId{1}) && node.knows(HostId{2}));
  EXPECT_TRUE(node.knows(HostId{3}));
  EXPECT_TRUE(node.knows(HostId{4}));
}

TEST(MeridianNode, PeersInRangeIntersectsRings) {
  MeridianNode node{HostId{0}, small_rings()};
  node.insert(HostId{1}, 1.0);    // ring 0
  node.insert(HostId{2}, 3.0);    // ring 1
  node.insert(HostId{3}, 6.0);    // ring 2
  node.insert(HostId{4}, 100.0);  // ring 4
  // Range [2.5, 7]: rings 1 and 2 intersect.
  const auto peers = node.peers_in_range(2.5, 7.0);
  EXPECT_EQ(peers.size(), 2u);
  // Full range catches everything.
  EXPECT_EQ(node.peers_in_range(0.0, 1e9).size(), 4u);
  // Range beyond all rings' content still returns ring members whose ring
  // intersects (outermost ring is unbounded).
  EXPECT_EQ(node.peers_in_range(1e6, 1e7).size(), 1u);
}

TEST(MeridianNode, AllPeersCollectsAcrossRings) {
  MeridianNode node{HostId{0}, small_rings()};
  node.insert(HostId{1}, 1.0);
  node.insert(HostId{2}, 50.0);
  EXPECT_EQ(node.all_peers().size(), 2u);
}

TEST(MeridianNode, SelfishStateExpires) {
  MeridianNode node{HostId{0}, small_rings()};
  node.set_state(NodeState::kSelfishBootstrap);
  node.set_selfish_until(SimTime::epoch() + Hours(7));
  EXPECT_EQ(node.state_at(SimTime::epoch() + Hours(3)),
            NodeState::kSelfishBootstrap);
  EXPECT_EQ(node.state_at(SimTime::epoch() + Hours(8)), NodeState::kNormal);
}

TEST(MeridianNode, OtherStatesDoNotExpire) {
  MeridianNode node{HostId{0}, small_rings()};
  node.set_state(NodeState::kDead);
  EXPECT_EQ(node.state_at(SimTime::epoch() + Hours(1000)), NodeState::kDead);
}

TEST(MeridianNode, RejectsZeroRings) {
  RingConfig config;
  config.num_rings = 0;
  EXPECT_THROW((MeridianNode{HostId{0}, config}), std::invalid_argument);
}

TEST(MeridianNode, StateNames) {
  EXPECT_STREQ(to_string(NodeState::kNormal), "normal");
  EXPECT_STREQ(to_string(NodeState::kSelfishBootstrap),
               "selfish-bootstrap");
  EXPECT_STREQ(to_string(NodeState::kPartitioned), "partitioned");
  EXPECT_STREQ(to_string(NodeState::kDead), "dead");
}

}  // namespace
}  // namespace crp::meridian
