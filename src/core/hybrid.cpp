#include "core/hybrid.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace crp::core {

std::vector<HybridRanked> hybrid_rank(const RatioMap& client,
                                      std::span<const RatioMap> candidates,
                                      const LatencyEstimateFn& estimate,
                                      const HybridConfig& config) {
  if (!estimate) {
    throw std::invalid_argument{"hybrid_rank: estimator must be callable"};
  }
  std::vector<HybridRanked> crp_side;
  std::vector<HybridRanked> predictor_side;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    HybridRanked entry;
    entry.index = i;
    entry.similarity = similarity(config.metric, client, candidates[i]);
    entry.estimate_ms = estimate(i);
    entry.by_crp = entry.similarity > config.min_similarity;
    (entry.by_crp ? crp_side : predictor_side).push_back(entry);
  }
  std::stable_sort(crp_side.begin(), crp_side.end(),
                   [](const HybridRanked& a, const HybridRanked& b) {
                     return a.similarity > b.similarity;
                   });
  std::stable_sort(predictor_side.begin(), predictor_side.end(),
                   [](const HybridRanked& a, const HybridRanked& b) {
                     return a.estimate_ms < b.estimate_ms;
                   });
  crp_side.insert(crp_side.end(), predictor_side.begin(),
                  predictor_side.end());
  return crp_side;
}

std::size_t hybrid_select(const RatioMap& client,
                          std::span<const RatioMap> candidates,
                          const LatencyEstimateFn& estimate,
                          const HybridConfig& config) {
  const auto ranked = hybrid_rank(client, candidates, estimate, config);
  if (ranked.empty()) return std::numeric_limits<std::size_t>::max();
  return ranked.front().index;
}

}  // namespace crp::core
