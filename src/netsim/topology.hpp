// Topology data model: regions, autonomous systems, PoPs and hosts.
//
// The topology is a static description of the simulated Internet. It is
// assembled once by `TopologyBuilder` (or by hand in tests) and then shared
// read-only by every subsystem. The latency between hosts is *derived* from
// this structure by `LatencyOracle` (latency_model.hpp).
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/ipv4.hpp"
#include "netsim/geo.hpp"

namespace crp::netsim {

/// Role of an endpoint. The roles mirror the paper's experiment: DNS
/// resolvers act as measuring clients, infrastructure nodes play the part
/// of PlanetLab candidate servers, and replica servers belong to the CDN.
enum class HostKind {
  kInfraNode,      // PlanetLab-like, well connected
  kDnsResolver,    // open recursive DNS server (the paper's "clients")
  kClient,         // generic end host (examples / extensions)
  kReplicaServer,  // CDN edge server
};

[[nodiscard]] const char* to_string(HostKind kind);

/// Geographic/economic region (e.g. "eu-west"). `population_weight`
/// controls how many ASes/hosts land there; `cdn_coverage` scales how many
/// CDN replicas the deployment places there — the paper's New Zealand tail
/// comes from regions with low coverage.
struct Region {
  RegionId id;
  std::string name;
  GeoPoint center;
  double radius_km = 500.0;
  double population_weight = 1.0;
  double cdn_coverage = 1.0;
};

/// Autonomous system. Tier 1 ASes form the backbone; higher tiers add
/// peering hops (and therefore latency) to cross-AS paths.
struct AutonomousSystem {
  AsnId id;
  RegionId region;
  int tier = 2;  // 1 = backbone, 2 = regional, 3 = access/stub
  std::string name;
  std::vector<PopId> pops;
};

/// ISP point of presence: a physical location inside one AS where hosts
/// (and CDN replicas) attach.
struct Pop {
  PopId id;
  AsnId asn;
  RegionId region;
  GeoPoint location;
};

/// Network endpoint.
struct Host {
  HostId id;
  HostKind kind = HostKind::kClient;
  PopId pop;
  AsnId asn;
  RegionId region;
  GeoPoint location;
  /// One-way access-link latency (host <-> PoP), milliseconds.
  double access_one_way_ms = 1.0;
  std::string name;

  /// Deterministic unique address derived from the host ID (10.0.0.0/8
  /// style lab addressing).
  [[nodiscard]] Ipv4 address() const {
    return Ipv4{(std::uint32_t{10} << 24) | (id.value() & 0x00ffffffu)};
  }
};

/// Immutable-after-build container for the whole simulated Internet.
class Topology {
 public:
  RegionId add_region(Region region);
  AsnId add_as(AutonomousSystem as);
  PopId add_pop(Pop pop);
  HostId add_host(Host host);

  [[nodiscard]] const Region& region(RegionId id) const;
  [[nodiscard]] const AutonomousSystem& as_of(AsnId id) const;
  [[nodiscard]] const Pop& pop(PopId id) const;
  [[nodiscard]] const Host& host(HostId id) const;

  [[nodiscard]] std::size_t num_regions() const { return regions_.size(); }
  [[nodiscard]] std::size_t num_ases() const { return ases_.size(); }
  [[nodiscard]] std::size_t num_pops() const { return pops_.size(); }
  [[nodiscard]] std::size_t num_hosts() const { return hosts_.size(); }

  [[nodiscard]] std::span<const Region> regions() const { return regions_; }
  [[nodiscard]] std::span<const AutonomousSystem> ases() const {
    return ases_;
  }
  [[nodiscard]] std::span<const Pop> pops() const { return pops_; }
  [[nodiscard]] std::span<const Host> hosts() const { return hosts_; }

  /// All hosts of the given kind, in ID order.
  [[nodiscard]] std::vector<HostId> hosts_of_kind(HostKind kind) const;

  /// PoPs belonging to the given region, in ID order.
  [[nodiscard]] std::vector<PopId> pops_in_region(RegionId region) const;

 private:
  std::vector<Region> regions_;
  std::vector<AutonomousSystem> ases_;
  std::vector<Pop> pops_;
  std::vector<Host> hosts_;
};

}  // namespace crp::netsim
