#include "core/cluster_quality.hpp"

#include <algorithm>

namespace crp::core {

std::vector<ClusterQuality> evaluate_clusters(const Clustering& clustering,
                                              const DistanceFn& rtt_ms) {
  std::vector<ClusterQuality> out;
  for (std::size_t ci = 0; ci < clustering.clusters.size(); ++ci) {
    const Clustering::Cluster& cluster = clustering.clusters[ci];
    if (cluster.members.size() < 2) continue;

    ClusterQuality q;
    q.cluster_index = ci;
    q.size = cluster.members.size();

    // Diameter: max pairwise member distance.
    for (std::size_t i = 0; i < cluster.members.size(); ++i) {
      for (std::size_t j = i + 1; j < cluster.members.size(); ++j) {
        q.diameter_ms = std::max(
            q.diameter_ms, rtt_ms(cluster.members[i], cluster.members[j]));
      }
    }

    // Intra: mean member-to-center distance over non-center members.
    double intra_sum = 0.0;
    std::size_t intra_count = 0;
    for (std::size_t member : cluster.members) {
      if (member == cluster.center) continue;
      intra_sum += rtt_ms(member, cluster.center);
      ++intra_count;
    }
    q.avg_intra_ms = intra_count == 0
                         ? 0.0
                         : intra_sum / static_cast<double>(intra_count);

    // Inter: mean center-to-other-center distance.
    double inter_sum = 0.0;
    std::size_t inter_count = 0;
    for (std::size_t cj = 0; cj < clustering.clusters.size(); ++cj) {
      if (cj == ci) continue;
      inter_sum += rtt_ms(cluster.center, clustering.clusters[cj].center);
      ++inter_count;
    }
    q.avg_inter_ms = inter_count == 0
                         ? 0.0
                         : inter_sum / static_cast<double>(inter_count);

    out.push_back(q);
  }
  return out;
}

std::vector<ClusterQuality> filter_by_diameter(
    std::vector<ClusterQuality> qualities, double max_diameter_ms) {
  std::erase_if(qualities, [max_diameter_ms](const ClusterQuality& q) {
    return q.diameter_ms >= max_diameter_ms;
  });
  return qualities;
}

std::size_t count_good_in_bucket(const std::vector<ClusterQuality>& qualities,
                                 double lo_ms, double hi_ms) {
  std::size_t count = 0;
  for (const ClusterQuality& q : qualities) {
    if (q.good() && q.diameter_ms >= lo_ms && q.diameter_ms < hi_ms) {
      ++count;
    }
  }
  return count;
}

}  // namespace crp::core
