// Epidemic distribution of position reports.
//
// §III.B's second deployment style: instead of a central service, an
// application library piggybacks redirection maps on application
// communication. `GossipMesh` implements the push-epidemic variant: each
// node keeps a local report store (a `PositionService`, so every node can
// answer the full query set locally) and periodically pushes a few
// wire-encoded reports to random peers. Freshness rules come from the
// store: newer timestamps replace older ones, stale reports age out —
// so the mesh converges to everyone holding everyone's latest position.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "service/position_service.hpp"
#include "service/sharded_frontend.hpp"
#include "sim/event_scheduler.hpp"

namespace crp::service {

struct GossipConfig {
  std::uint64_t seed = 41;
  /// Peers contacted per node per round.
  int fanout = 2;
  /// Reports pushed per contact (own report always included).
  int reports_per_message = 8;
  Duration round_interval = Minutes(5);
  /// Store configuration shared by every node.
  ServiceConfig store;
  /// Shards per node-local store. 1 (the default) keeps the historical
  /// single-PositionService store; >1 gives every node a ShardedFrontend
  /// of that many shards — gossip traffic, acceptance and coverage are
  /// bit-identical either way (the frontend observably behaves like one
  /// service), but delivery fan-out across shards becomes visible via
  /// GossipStats::cross_shard_misses.
  std::size_t store_shards = 1;
};

/// Cumulative mesh-level transmission accounting. Rejected counters stay
/// zero in healthy meshes — nonzero values mean reports are silently
/// failing to propagate (oversized node ids, stale arrivals) and
/// coverage will stall below 1.0.
struct GossipStats {
  /// Reports that made it onto the wire.
  std::uint64_t reports_sent = 0;
  /// Reports dropped before transmission because the wire format
  /// rejected them (e.g. node id longer than the encoding bound).
  std::uint64_t encode_rejected = 0;
  /// Wire-delivered reports the receiver's store refused (typically
  /// stale: the receiver already holds a newer timestamp).
  std::uint64_t publish_rejected = 0;
  /// Total report bytes pushed.
  std::uint64_t bytes = 0;
  /// Gossip rounds executed.
  std::uint64_t rounds = 0;
  /// Wire-delivered reports that landed on a shard other than the one
  /// owning the receiver's own id (sharded stores only; always 0 when
  /// store_shards == 1). Gossip picks peers by node, not by shard, so
  /// most deliveries cross shards — this counter makes that ingest
  /// fan-out visible when sizing store_shards.
  std::uint64_t cross_shard_misses = 0;
  /// Anti-entropy repair traffic (repair_shards): wire-encoded reports
  /// replayed from peers into crashed shards, and their bytes. Counted
  /// separately from reports_sent/bytes — repair is recovery traffic,
  /// not steady-state gossip, and sizing the two apart is the point.
  std::uint64_t repair_reports_sent = 0;
  std::uint64_t repair_bytes = 0;
};

class GossipMesh {
 public:
  explicit GossipMesh(GossipConfig config = {});

  /// Adds a node with an empty store. Duplicate IDs throw.
  void add_node(const std::string& id);
  /// Removes a node and every link to it (churn). Unknown IDs throw.
  /// Other nodes keep any reports already gossiped from the departed
  /// node; they age out via the store's staleness rules.
  void remove_node(const std::string& id);
  /// Declares an undirected gossip link. Unknown IDs throw.
  void add_link(const std::string& a, const std::string& b);
  /// Wires every pair (full mesh) — convenient for small deployments.
  void fully_connect();

  /// Publishes `node`'s own fresh report into its local store.
  bool publish_local(const std::string& node, core::RatioMap map,
                     SimTime now);

  /// One synchronous gossip round at `now`: every node pushes to
  /// `fanout` random peers. Returns reports transmitted.
  std::size_t round(SimTime now);

  /// Schedules recurring rounds on `sched` until `end`.
  sim::EventHandle schedule(sim::EventScheduler& sched, SimTime start,
                            SimTime end);

  /// Whether node stores are sharded (store_shards > 1).
  [[nodiscard]] bool sharded() const { return config_.store_shards > 1; }

  /// The node's local store (throws for unknown IDs, and for sharded
  /// meshes — use sharded_store()/store_view() there). Writer-side: the
  /// mesh is this store's single writer — gossip rounds publish into it
  /// through the writer API (publish_encoded), so mutating it from
  /// another thread while rounds run violates the single-writer
  /// contract (DESIGN.md §8). Reader threads use store_snapshot().
  [[nodiscard]] PositionService& store(const std::string& node);
  /// The node's currently published serving snapshot (nullptr until the
  /// store publishes one — enable `store.snapshots` in the config or
  /// call publish_snapshot on the store). Lock-free and safe from any
  /// thread while gossip rounds keep writing: rounds publish through
  /// the writer API, which republishes snapshots at the configured
  /// boundaries, and readers only ever see complete ones. Throws for
  /// sharded meshes — use store_view() there.
  [[nodiscard]] std::shared_ptr<const ServingSnapshot> store_snapshot(
      const std::string& node) const;
  /// Sharded-mesh twins of store()/store_snapshot(): the node's local
  /// ShardedFrontend, and an acquire-all View of its shard snapshots.
  /// Both throw for unknown IDs and for unsharded meshes.
  [[nodiscard]] ShardedFrontend& sharded_store(const std::string& node);
  [[nodiscard]] ShardedFrontend::View store_view(
      const std::string& node) const;
  /// Anti-entropy crash recovery over the wire path (DESIGN.md §9):
  /// for every shard of `node`'s sharded store that a kShardCrash event
  /// wiped, replays the peers' live reports owned by that shard —
  /// re-encoded frame by frame, exactly as gossip would carry them —
  /// through ShardedFrontend::recover_shard at `now`. Every peer's copy
  /// is replayed (freshness rules keep the newest per id, so the
  /// rebuilt shard converges to what a never-crashed shard fed the same
  /// reports holds); traffic counts under the repair_* stats. Returns
  /// reports accepted into recovering shards (0 when nothing needs
  /// repair). Throws for unknown IDs and unsharded meshes. Writer-side.
  std::size_t repair_shards(const std::string& node, SimTime now);

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  /// Fraction of (node, report) pairs delivered: 1.0 means every node's
  /// store holds a live report for every node that published.
  [[nodiscard]] double coverage(SimTime now) const;
  /// Total report bytes pushed so far.
  [[nodiscard]] std::uint64_t bytes_gossiped() const { return stats_.bytes; }
  /// Cumulative transmission/drop accounting.
  [[nodiscard]] const GossipStats& stats() const { return stats_; }

 private:
  /// Exactly one of store/sharded is set, per config_.store_shards.
  struct Node {
    std::unique_ptr<PositionService> store;
    std::unique_ptr<ShardedFrontend> sharded;
    std::vector<std::string> peers;
  };

  [[nodiscard]] const Node& node_at(const std::string& node) const;
  /// Store dispatch — each bit-identical across store types.
  [[nodiscard]] std::vector<std::string> live_in_store(const Node& node,
                                                      SimTime now) const;
  [[nodiscard]] std::optional<PositionReport> report_in_store(
      const Node& node, const std::string& id) const;
  /// Delivers wire bytes into `receiver`'s store, counting cross-shard
  /// landings for sharded stores. `receiver_id` is the receiving node.
  bool deliver(Node& receiver, const std::string& receiver_id,
               std::string_view bytes, SimTime now);

  GossipConfig config_;
  // Insertion order retained for deterministic iteration.
  std::vector<std::string> order_;
  std::unordered_map<std::string, Node> nodes_;
  Rng rng_;
  GossipStats stats_;
};

}  // namespace crp::service
