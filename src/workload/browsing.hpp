// Passive position acquisition from user web traffic.
//
// Section VI observes that CRP's (already tiny) active-probing overhead
// "may not be necessary if the service can passively monitor
// user-generated DNS translations (e.g., from Web browsing)". This
// module generates a realistic browsing workload — diurnally modulated
// sessions of page loads, each resolving a few CDN-hosted names through
// the node's recursive resolver — and harvests every CDN answer into the
// node's redirection history via CrpNode::observe.
//
// Two realism effects matter and are captured: (a) lookups inside a
// session often hit the resolver's still-valid 20 s TTL cache, so bursts
// yield fewer *distinct* observations than lookups; (b) activity follows
// the user's local time of day, so histories grow unevenly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "core/node.hpp"
#include "dns/name.hpp"
#include "dns/resolver.hpp"
#include "sim/event_scheduler.hpp"

namespace crp::workload {

struct BrowsingConfig {
  /// Mean browsing sessions per simulated day.
  double sessions_per_day = 8.0;
  /// Pages per session: geometric-ish, mean.
  double pages_per_session = 10.0;
  /// Gap between page loads within a session.
  Duration page_gap_mean = Seconds(25);
  /// Names resolved per page load (a page embeds several CDN objects).
  int names_per_page = 2;
  /// Peak-to-trough ratio of the diurnal activity curve (1 = flat).
  double diurnal_ratio = 4.0;
  /// Hour of local peak activity (0-23).
  double peak_hour = 20.0;
};

/// Drives one node's browsing and harvests redirections into its
/// CrpNode. The referenced objects must outlive the workload.
class BrowsingWorkload {
 public:
  BrowsingWorkload(dns::RecursiveResolver& resolver, core::CrpNode& node,
                   std::vector<dns::Name> sites,
                   core::ReplicaLookup lookup, std::uint64_t seed,
                   BrowsingConfig config = {});

  /// Schedules sessions on `sched` over [start, end).
  void schedule(sim::EventScheduler& sched, SimTime start, SimTime end);

  /// Runs synchronously without a scheduler (convenience for tests):
  /// generates the same session structure over the window.
  void run(SimTime start, SimTime end);

  [[nodiscard]] std::uint64_t lookups() const { return lookups_; }
  [[nodiscard]] std::uint64_t observations() const { return observations_; }
  [[nodiscard]] std::uint64_t sessions() const { return sessions_; }

 private:
  /// One planned page load: when, and which site indices it resolves.
  /// The full plan is drawn up-front so the scheduled and synchronous
  /// execution paths consume the RNG identically.
  struct PageLoad {
    SimTime when;
    std::vector<std::size_t> sites;
  };

  /// Relative activity level at sim time `t` (diurnal curve, mean 1).
  [[nodiscard]] double activity(SimTime t) const;
  /// Resolves one planned page load and harvests redirections.
  void load_page(const PageLoad& page);
  /// Generates session start times over the window.
  [[nodiscard]] std::vector<SimTime> session_times(SimTime start,
                                                   SimTime end);
  /// Draws the complete page-load plan for the window.
  [[nodiscard]] std::vector<PageLoad> plan(SimTime start, SimTime end);

  dns::RecursiveResolver* resolver_;
  core::CrpNode* node_;
  std::vector<dns::Name> sites_;
  core::ReplicaLookup lookup_;
  BrowsingConfig config_;
  Rng rng_;
  std::uint64_t lookups_ = 0;
  std::uint64_t observations_ = 0;
  std::uint64_t sessions_ = 0;
};

}  // namespace crp::workload
