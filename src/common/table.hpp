// Plain-text table rendering for benchmark output.
//
// Every bench binary prints the rows/series of the paper table or figure it
// regenerates; `TextTable` keeps that output aligned and diff-friendly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace crp {

/// Column-aligned text table. Usage:
///
///   TextTable t;
///   t.header({"technique", "# clusters", "mean size"});
///   t.row({"CRP (t=0.1)", "36", "3.56"});
///   std::cout << t.render();
class TextTable {
 public:
  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next row.
  void rule();

  [[nodiscard]] std::string render() const;
  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_rule = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats a double with the given number of decimals.
[[nodiscard]] std::string fmt(double v, int decimals = 2);
/// Formats an integral count.
[[nodiscard]] std::string fmt(std::size_t v);
/// Formats a percentage ("72%").
[[nodiscard]] std::string fmt_pct(double fraction, int decimals = 0);

}  // namespace crp
