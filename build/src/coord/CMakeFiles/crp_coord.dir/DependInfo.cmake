
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coord/binning.cpp" "src/coord/CMakeFiles/crp_coord.dir/binning.cpp.o" "gcc" "src/coord/CMakeFiles/crp_coord.dir/binning.cpp.o.d"
  "/root/repo/src/coord/gnp.cpp" "src/coord/CMakeFiles/crp_coord.dir/gnp.cpp.o" "gcc" "src/coord/CMakeFiles/crp_coord.dir/gnp.cpp.o.d"
  "/root/repo/src/coord/vivaldi.cpp" "src/coord/CMakeFiles/crp_coord.dir/vivaldi.cpp.o" "gcc" "src/coord/CMakeFiles/crp_coord.dir/vivaldi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/crp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/crp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/crp_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/crp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
