#include "asn/asn_clustering.hpp"

#include <limits>
#include <map>

#include "core/cluster_quality.hpp"

namespace crp::asn {

core::Clustering asn_cluster(const netsim::Topology& topo,
                             const std::vector<HostId>& nodes,
                             const core::DistanceFn& rtt_ms) {
  // Group node indices by ASN (ordered map keeps output deterministic).
  std::map<AsnId, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    groups[topo.host(nodes[i]).asn].push_back(i);
  }

  core::Clustering out;
  out.assignment.assign(nodes.size(), 0);
  for (auto& [asn, members] : groups) {
    core::Clustering::Cluster cluster;
    cluster.members = members;

    // Center: RTT-medoid if distances are available.
    cluster.center = members.front();
    if (rtt_ms && members.size() > 2) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t candidate : members) {
        double sum = 0.0;
        for (std::size_t other : members) {
          if (other != candidate) sum += rtt_ms(candidate, other);
        }
        if (sum < best) {
          best = sum;
          cluster.center = candidate;
        }
      }
    }

    const std::size_t index = out.clusters.size();
    for (std::size_t m : members) out.assignment[m] = index;
    out.clusters.push_back(std::move(cluster));
  }
  return out;
}

}  // namespace crp::asn
