// Ablation: probe windows under network dynamics (§VI / Fig. 9's caveat).
//
// The paper observed that "longer histories in an environment with more
// dynamic conditions can actually harm overall performance by
// incorporating stale information". This bench creates those dynamic
// conditions explicitly — slow routing drift re-ranking nearby replicas
// every ~12 h, plus CDN replica outage churn — and compares window sizes
// in a stable world vs the dynamic one.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "eval/series.hpp"

namespace {

using namespace crp;

struct WindowResult {
  double mean_rank = 0.0;
  double p90_rank = 0.0;
  std::vector<double> per_client_rank;  // includes non-comparable as rank
};

WindowResult rank_with_window(bench::SelectionExperiment& exp,
                              std::size_t window) {
  std::vector<core::RatioMap> client_maps;
  for (HostId h : exp.world->dns_servers()) {
    client_maps.push_back(exp.world->crp_node(h).ratio_map(window));
  }
  std::vector<core::RatioMap> candidate_maps;
  for (HostId h : exp.world->candidates()) {
    candidate_maps.push_back(exp.world->crp_node(h).ratio_map(window));
  }
  const auto outcomes =
      eval::evaluate_crp_selection(*exp.gt, client_maps, candidate_maps, 1);
  WindowResult result;
  result.per_client_rank = eval::ranks_of(outcomes);
  const auto comparable = eval::ranks_of(outcomes, /*comparable_only=*/true);
  const Summary s = summarize(comparable);
  result.mean_rank = s.mean;
  result.p90_rank = s.p90;
  return result;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 5150;

  eval::print_banner(std::cout,
                     "Probe windows under routing drift + replica churn",
                     "§VI staleness discussion (Fig. 9's caveat)", kSeed);

  bench::Scale scale = bench::Scale::from_env();
  scale.dns_servers = std::min<std::size_t>(scale.dns_servers, 250);
  scale.candidates = std::min<std::size_t>(scale.candidates, 100);
  scale.campaign = Hours(24 * 7);  // a week: several drift epochs

  TextTable table;
  table.header({"world", "window", "mean rank", "p90 rank",
                "clients beating 'all'"});
  const std::vector<std::pair<const char*, std::size_t>> windows{
      {"all", core::kAllProbes}, {"30", 30}, {"10", 10}};

  double stable_all = 0.0;
  double dynamic_all = 0.0;
  double dynamic_win10 = 0.0;
  double stable_beat_frac = 0.0;
  double dynamic_beat_frac = 0.0;

  for (const bool dynamic : {false, true}) {
    std::fprintf(stderr, "=== %s world ===\n",
                 dynamic ? "dynamic" : "stable");
    bench::SelectionExperiment exp{
        kSeed, scale, eval::PolicyKind::kLatencyDriven,
        [dynamic](eval::WorldConfig& config) {
          // What matters is performance on upcoming transfers: measure
          // ground truth over the campaign's final stretch.
          config.ground_truth_window_fraction = 0.05;
          if (dynamic) {
            config.latency.route_shift_sigma = 0.35;
            config.latency.route_shift_epoch = Hours(12);
            config.health.outage_probability = 0.15;
            config.health.outage_epoch = Hours(6);
          }
        }};
    WindowResult all_result;
    for (const auto& [label, window] : windows) {
      const WindowResult r = rank_with_window(exp, window);
      std::string beating = "-";
      if (window == core::kAllProbes) {
        all_result = r;
      } else {
        const double frac =
            eval::fraction_better(r.per_client_rank,
                                  all_result.per_client_rank);
        beating = fmt_pct(frac);
        if (dynamic && window == 10) dynamic_beat_frac = frac;
        if (!dynamic && window == 10) stable_beat_frac = frac;
      }
      table.row({dynamic ? "dynamic" : "stable", label, fmt(r.mean_rank),
                 fmt(r.p90_rank), beating});
      if (!dynamic && window == core::kAllProbes) stable_all = r.mean_rank;
      if (dynamic && window == core::kAllProbes) dynamic_all = r.mean_rank;
      if (dynamic && window == 10) dynamic_win10 = r.mean_rank;
    }
    table.rule();
  }

  std::cout << "\n" << table.render();
  std::cout << "\nreading: the paper found all-probes best for ~2/3 of "
               "DNS servers but *worse* than\na 10-30 probe window for "
               "the rest, blaming dynamic conditions. Here the\nfraction "
               "of clients for which the 10-probe window beats the full "
               "history grows\nfrom " << fmt_pct(stable_beat_frac)
            << " (stable world) to " << fmt_pct(dynamic_beat_frac)
            << " (drift + churn), and everyone pays for\nstaleness ("
            << fmt(dynamic_all) << " vs " << fmt(stable_all)
            << " mean rank; 10-probe window " << fmt(dynamic_win10)
            << ").\n";
  return 0;
}
