# Empty compiler generated dependencies file for fig9_window_size.
# This may be replaced when dependencies are built.
