#include "cdn/customer.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace crp::cdn {
namespace {

TEST(CustomerCatalog, BuildsRequestedCustomers) {
  test::MiniWorld world{12};
  EXPECT_EQ(world.catalog.size(), 2u);
  EXPECT_EQ(world.catalog.customer(0).web_name,
            dns::Name::parse("img.customer0.example"));
  EXPECT_EQ(world.catalog.customer(0).cdn_name,
            dns::Name::parse("c0.g.cdnsim.net"));
}

TEST(CustomerCatalog, SubsetSizeMatchesFraction) {
  test::MiniWorld world{13};
  std::size_t edge = 0;
  for (const ReplicaServer& r : world.deployment.replicas()) {
    if (!r.origin_fallback) ++edge;
  }
  for (const Customer& c : world.catalog.customers()) {
    EXPECT_NEAR(static_cast<double>(c.replica_subset.size()),
                0.8 * static_cast<double>(edge), 2.0);
  }
}

TEST(CustomerCatalog, SubsetsExcludeFallbacksAndAreSorted) {
  test::MiniWorld world{14};
  for (const Customer& c : world.catalog.customers()) {
    EXPECT_TRUE(std::is_sorted(c.replica_subset.begin(),
                               c.replica_subset.end()));
    for (ReplicaId id : c.replica_subset) {
      EXPECT_FALSE(world.deployment.is_origin_fallback(id));
    }
  }
}

TEST(CustomerCatalog, DifferentCustomersGetDifferentSubsets) {
  test::MiniWorld world{15};
  EXPECT_NE(world.catalog.customer(0).replica_subset,
            world.catalog.customer(1).replica_subset);
}

TEST(Customer, ServesBinarySearch) {
  test::MiniWorld world{16};
  const Customer& c = world.catalog.customer(0);
  for (ReplicaId id : c.replica_subset) {
    EXPECT_TRUE(c.serves(id));
  }
  for (ReplicaId fallback : world.deployment.fallbacks()) {
    EXPECT_FALSE(c.serves(fallback));
  }
}

TEST(CustomerCatalog, ByCdnName) {
  test::MiniWorld world{17};
  EXPECT_EQ(world.catalog.by_cdn_name(dns::Name::parse("c1.g.cdnsim.net")),
            &world.catalog.customer(1));
  EXPECT_EQ(world.catalog.by_cdn_name(dns::Name::parse("cx.g.cdnsim.net")),
            nullptr);
}

TEST(CustomerCatalog, WebNamesInOrder) {
  test::MiniWorld world{18};
  const auto names = world.catalog.web_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], world.catalog.customer(0).web_name);
  EXPECT_EQ(names[1], world.catalog.customer(1).web_name);
}

TEST(CustomerCatalog, CdnNamesFallUnderZone) {
  test::MiniWorld world{19};
  for (const Customer& c : world.catalog.customers()) {
    EXPECT_TRUE(c.cdn_name.is_subdomain_of(world.catalog.cdn_zone()));
  }
}

}  // namespace
}  // namespace crp::cdn
