#include "service/wire.hpp"

#include <cmath>
#include <cstring>
#include <vector>

namespace crp::service {

namespace {

constexpr char kMagic[3] = {'C', 'R', 'P'};
constexpr std::uint8_t kVersion = 1;

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_i64(std::string& out, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((u >> (8 * i)) & 0xff));
  }
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

/// Bounds-checked little-endian reader.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool read_bytes(void* out, std::size_t n) {
    if (pos_ + n > data_.size()) return false;
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  [[nodiscard]] bool read_u8(std::uint8_t& v) { return read_int(v); }
  [[nodiscard]] bool read_u16(std::uint16_t& v) { return read_int(v); }
  [[nodiscard]] bool read_u32(std::uint32_t& v) { return read_int(v); }
  [[nodiscard]] bool read_i64(std::int64_t& v) {
    std::uint64_t u = 0;
    if (!read_int(u)) return false;
    v = static_cast<std::int64_t>(u);
    return true;
  }
  [[nodiscard]] bool read_f64(double& v) {
    std::uint64_t bits = 0;
    if (!read_int(bits)) return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
  }
  [[nodiscard]] bool read_string(std::string& out, std::size_t n) {
    if (pos_ + n > data_.size()) return false;
    out.assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  [[nodiscard]] bool read_int(T& v) {
    if (pos_ + sizeof(T) > data_.size()) return false;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      acc |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    v = static_cast<T>(acc);
    pos_ += sizeof(T);
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<std::size_t> encoded_size(const PositionReport& report) {
  if (report.node_id.size() > kMaxNodeIdBytes ||
      report.map.size() > kMaxEntries) {
    return std::nullopt;
  }
  return 3 + 1 + 2 + report.node_id.size() + 8 + 4 +
         report.map.size() * 12;
}

std::optional<std::string> encode(const PositionReport& report) {
  const auto size = encoded_size(report);
  if (!size.has_value()) return std::nullopt;
  std::string out;
  out.reserve(*size);
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kVersion));
  put_u16(out, static_cast<std::uint16_t>(report.node_id.size()));
  out.append(report.node_id.data(), report.node_id.size());
  put_i64(out, report.when.micros());
  put_u32(out, static_cast<std::uint32_t>(report.map.size()));
  for (const auto& [replica, ratio] : report.map.entries()) {
    put_u32(out, replica.value());
    put_f64(out, ratio);
  }
  return out;
}

std::optional<std::string_view> peek_node_id(std::string_view bytes) {
  // Header layout: MAGIC(3) VERSION(1) id_len(u16 LE) id(bytes).
  constexpr std::size_t kHeader = 3 + 1 + 2;
  if (bytes.size() < kHeader) return std::nullopt;
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0 ||
      static_cast<std::uint8_t>(bytes[3]) != kVersion) {
    return std::nullopt;
  }
  const std::size_t id_len =
      static_cast<std::size_t>(static_cast<unsigned char>(bytes[4])) |
      (static_cast<std::size_t>(static_cast<unsigned char>(bytes[5])) << 8);
  if (id_len > kMaxNodeIdBytes || kHeader + id_len > bytes.size()) {
    return std::nullopt;
  }
  return bytes.substr(kHeader, id_len);
}

std::optional<PositionReport> decode(std::string_view bytes) {
  Reader reader{bytes};
  char magic[3];
  if (!reader.read_bytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  std::uint8_t version = 0;
  if (!reader.read_u8(version) || version != kVersion) return std::nullopt;

  std::uint16_t id_len = 0;
  if (!reader.read_u16(id_len) || id_len > kMaxNodeIdBytes) {
    return std::nullopt;
  }
  PositionReport report;
  if (!reader.read_string(report.node_id, id_len)) return std::nullopt;

  std::int64_t timestamp = 0;
  if (!reader.read_i64(timestamp)) return std::nullopt;
  report.when = SimTime{timestamp};

  std::uint32_t count = 0;
  if (!reader.read_u32(count) || count > kMaxEntries) return std::nullopt;

  std::vector<core::RatioMap::Entry> entries;
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t replica = 0;
    double ratio = 0.0;
    if (!reader.read_u32(replica) || !reader.read_f64(ratio)) {
      return std::nullopt;
    }
    if (!std::isfinite(ratio) || ratio <= 0.0) return std::nullopt;
    entries.emplace_back(ReplicaId{replica}, ratio);
  }
  if (!reader.at_end()) return std::nullopt;  // trailing garbage

  report.map = core::RatioMap::from_ratios(entries);
  return report;
}

}  // namespace crp::service
