#include "sim/event_scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace crp::sim {
namespace {

TEST(EventScheduler, RunsEventsInTimeOrder) {
  EventScheduler sched;
  std::vector<int> order;
  sched.at(SimTime{300}, [&] { order.push_back(3); });
  sched.at(SimTime{100}, [&] { order.push_back(1); });
  sched.at(SimTime{200}, [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), SimTime{300});
}

TEST(EventScheduler, FifoTieBreakAtSameInstant) {
  EventScheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.at(SimTime{100}, [&order, i] { order.push_back(i); });
  }
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventScheduler, AfterIsRelativeToNow) {
  EventScheduler sched;
  SimTime fired;
  sched.at(SimTime{100}, [&] {
    sched.after(Micros(50), [&] { fired = sched.now(); });
  });
  sched.run_all();
  EXPECT_EQ(fired, SimTime{150});
}

TEST(EventScheduler, PastEventsClampToNow) {
  EventScheduler sched;
  sched.at(SimTime{100}, [] {});
  sched.run_all();
  bool fired = false;
  sched.at(SimTime{50}, [&] { fired = true; });  // in the past
  sched.run_all();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sched.now(), SimTime{100});  // clock never goes backwards
}

TEST(EventScheduler, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventScheduler sched;
  int count = 0;
  sched.at(SimTime{100}, [&] { ++count; });
  sched.at(SimTime{200}, [&] { ++count; });
  sched.at(SimTime{300}, [&] { ++count; });
  EXPECT_EQ(sched.run_until(SimTime{200}), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sched.now(), SimTime{200});
  EXPECT_EQ(sched.pending(), 1u);
  sched.run_all();
  EXPECT_EQ(count, 3);
}

TEST(EventScheduler, RunUntilAdvancesClockEvenWithNoEvents) {
  EventScheduler sched;
  sched.run_until(SimTime{500});
  EXPECT_EQ(sched.now(), SimTime{500});
}

TEST(EventScheduler, EveryRecursUntilCallbackStops) {
  EventScheduler sched;
  int ticks = 0;
  sched.every(SimTime{0}, Micros(10), [&] {
    ++ticks;
    return ticks < 5;
  });
  sched.run_all();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sched.now(), SimTime{40});
}

TEST(EventScheduler, EveryFiresAtExactPeriods) {
  EventScheduler sched;
  std::vector<std::int64_t> times;
  sched.every(SimTime{100}, Micros(25), [&] {
    times.push_back(sched.now().micros());
    return times.size() < 3;
  });
  sched.run_all();
  EXPECT_EQ(times, (std::vector<std::int64_t>{100, 125, 150}));
}

TEST(EventScheduler, EveryRejectsNonPositivePeriod) {
  EventScheduler sched;
  EXPECT_THROW(sched.every(SimTime{0}, Duration{0}, [] { return false; }),
               std::invalid_argument);
}

TEST(EventScheduler, CancelSingleEvent) {
  EventScheduler sched;
  bool fired = false;
  const EventHandle h = sched.at(SimTime{100}, [&] { fired = true; });
  EXPECT_TRUE(sched.cancel(h));
  sched.run_all();
  EXPECT_FALSE(fired);
}

TEST(EventScheduler, CancelPeriodicStopsRecurrence) {
  EventScheduler sched;
  int ticks = 0;
  EventHandle h = sched.every(SimTime{0}, Micros(10), [&] {
    ++ticks;
    return true;
  });
  sched.at(SimTime{35}, [&] { sched.cancel(h); });
  sched.run_until(SimTime{200});
  EXPECT_EQ(ticks, 4);  // t = 0, 10, 20, 30
}

TEST(EventScheduler, CancelInvalidHandleIsNoop) {
  EventScheduler sched;
  EXPECT_FALSE(sched.cancel(EventHandle{}));
}

TEST(EventScheduler, EventsScheduledDuringRunAreExecuted) {
  EventScheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sched.after(Micros(1), recurse);
  };
  sched.at(SimTime{0}, recurse);
  sched.run_all();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sched.now(), SimTime{9});
}

TEST(EventScheduler, InterleavedPeriodicTasksStayDeterministic) {
  EventScheduler sched;
  std::vector<char> log;
  sched.every(SimTime{0}, Micros(10), [&] {
    log.push_back('a');
    return log.size() < 12;
  });
  sched.every(SimTime{5}, Micros(10), [&] {
    log.push_back('b');
    return log.size() < 12;
  });
  sched.run_all();
  ASSERT_GE(log.size(), 4u);
  EXPECT_EQ(log[0], 'a');
  EXPECT_EQ(log[1], 'b');
  EXPECT_EQ(log[2], 'a');
  EXPECT_EQ(log[3], 'b');
}

}  // namespace
}  // namespace crp::sim
