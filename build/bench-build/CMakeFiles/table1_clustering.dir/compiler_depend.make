# Empty compiler generated dependencies file for table1_clustering.
# This may be replaced when dependencies are built.
