// Ablation: automatic CDN-name selection (§VI).
//
// Generates a catalog with several CDN names, lets a set of nodes
// bootstrap against them, and applies the paper's two filtering rules:
// (1) keep names whose best pinged replica is nearby, and (2) drop names
// whose answers are dominated by origin fallbacks. Then shows selection
// accuracy with all names vs filtered names for clients in poorly
// covered regions.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/name_filter.hpp"
#include "eval/series.hpp"

int main() {
  using namespace crp;
  constexpr std::uint64_t kSeed = 606;

  eval::print_banner(std::cout, "Automatic CDN-name filtering",
                     "§VI discussion (name selection rules)", kSeed);

  // A world with more customer names than the paper's hand-picked two.
  eval::WorldConfig config;
  config.seed = kSeed;
  config.num_candidates = 60;
  config.num_dns_servers = 120;
  config.cdn.target_replicas = 300;
  config.customers.num_customers = 6;
  eval::World world{config};
  world.run_probing(SimTime::epoch(), SimTime::epoch() + Hours(12),
                    Minutes(10));

  // Bootstrap observations per name for a sample of nodes: resolve each
  // name a few times and record which replicas answer.
  TextTable table;
  table.header({"node (region)", "name", "distinct", "fallback%",
                "best ping (ms)", "verdict"});

  std::size_t shown = 0;
  for (std::size_t c = 0; c < world.dns_servers().size() && shown < 4;
       c += 37) {
    const HostId node = world.dns_servers()[c];
    auto& resolver = world.resolver(node);

    std::vector<core::NameObservations> observations;
    for (const auto& customer : world.catalog().customers()) {
      core::NameObservations obs;
      obs.name = customer.web_name;
      for (int probe = 0; probe < 10; ++probe) {
        const auto result = resolver.resolve(
            customer.web_name,
            world.campaign_end() + Minutes(probe * 10 + 1));
        std::vector<ReplicaId> ids;
        for (Ipv4 addr : result.addresses) {
          if (const auto id = world.replica_of(addr); id.has_value()) {
            ids.push_back(*id);
          }
        }
        obs.probes.push_back(std::move(ids));
      }
      observations.push_back(std::move(obs));
    }

    const auto qualities = core::evaluate_names(
        observations,
        [&world](ReplicaId id) {
          return world.deployment().is_origin_fallback(id);
        },
        [&world, node](ReplicaId id) {
          return world.oracle().rtt_ms(
              node, world.deployment().replica(id).host,
              world.campaign_end());
        });

    const auto& region =
        world.topology().region(world.topology().host(node).region).name;
    for (const auto& q : qualities) {
      table.row({world.topology().host(node).name + " (" + region + ")",
                 q.name.to_string(), fmt(q.distinct_replicas),
                 fmt_pct(q.fallback_fraction),
                 q.best_replica_rtt_ms.has_value()
                     ? fmt(*q.best_replica_rtt_ms, 1)
                     : std::string{"-"},
                 q.keep ? "keep" : ("drop: " + q.reason)});
    }
    table.rule();
    ++shown;
  }
  std::cout << "\n" << table.render();
  std::cout << "\nreading: nodes in well-covered regions keep every name; "
               "nodes in poorly\ncovered regions (high fallback fraction, "
               "no nearby replica) drop names that\nwould only add noise "
               "— matching §VI's filtering rules. The overhead of the\n"
               "ping rule is a handful of probes at bootstrap, "
               "independent of system size.\n";
  return 0;
}
