// Immutable, shared-ownership snapshot of a SimilarityEngine corpus —
// the unit of the concurrent read path (DESIGN.md §8).
//
// `SimilarityEngine::freeze(epoch)` cuts one: verbatim copies of the
// engine's CSR arrays and posting lists (components no mutation dirtied
// since the previous freeze are shared with that snapshot, not copied),
// tagged with the caller's membership epoch. Every query here runs the
// same `engine_detail` kernels the mutable engine runs, over those
// frozen bytes — so a snapshot query is bit-identical to the same query
// against the engine at the moment of the freeze. That is the whole
// determinism story: one kernel implementation, two storage owners.
//
// Thread safety: an EngineSnapshot is deeply immutable after freeze();
// any number of threads may query one concurrently with no locking (the
// kernels' scratch is thread_local). Lifetime is shared_ptr-managed, so
// a reader's results stay valid however long it holds its snapshot,
// while the writer keeps mutating the live engine and cutting newer
// snapshots.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/flat_matrix.hpp"
#include "core/engine_kernels.hpp"
#include "core/ratio_map.hpp"
#include "core/selection.hpp"
#include "core/similarity.hpp"

namespace crp {
class ThreadPool;
}

namespace crp::core {

class EngineSnapshot {
 public:
  using RowView = core::RowView;

  /// Row-slot count (dead slots included), the length of dense score
  /// vectors — mirrors SimilarityEngine::size() at the freeze.
  [[nodiscard]] std::size_t size() const { return rows_->size(); }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t live_size() const { return live_rows_; }
  [[nodiscard]] bool alive(std::size_t index) const {
    return (*rows_)[index].live;
  }
  [[nodiscard]] SimilarityKind kind() const { return kind_; }
  [[nodiscard]] std::size_t distinct_replicas() const {
    return live_replicas_;
  }
  /// The membership epoch the writer passed to freeze() — how readers
  /// (and tests) tell which corpus generation answered them.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] double strongest_mapping(std::size_t index) const {
    return (*strongest_)[index];
  }
  /// Raw view of row `index` (empty for dead rows). Unlike the mutable
  /// engine's row_view, stays valid as long as the snapshot is held.
  [[nodiscard]] RowView row_view(std::size_t index) const {
    return view().row_view(index);
  }

  // --- queries: each bit-identical to its SimilarityEngine namesake at
  // --- the frozen epoch (same kernels, same bytes) ---

  [[nodiscard]] std::vector<double> scores(const RatioMap& query) const;
  void scores(const RatioMap& query, std::span<double> out,
              std::size_t* touched_maps = nullptr) const;
  void scores(const RowView& query, std::span<double> out,
              std::size_t* touched_maps = nullptr) const;
  [[nodiscard]] std::vector<double> scores_of(std::size_t index) const;
  void scores_of(std::size_t index, std::span<double> out,
                 std::size_t* touched_maps = nullptr) const;
  void scores_subset(const RatioMap& query,
                     std::span<const std::size_t> subset,
                     std::span<double> out,
                     std::size_t* touched_maps = nullptr) const;
  void scores_of_subset(std::size_t index,
                        std::span<const std::size_t> subset,
                        std::span<double> out,
                        std::size_t* touched_maps = nullptr) const;
  [[nodiscard]] std::optional<RankedCandidate> best_match(
      const RowView& query, std::size_t* touched_maps = nullptr) const;
  [[nodiscard]] std::vector<RankedCandidate> rank_all(
      const RatioMap& query) const;
  [[nodiscard]] std::vector<RankedCandidate> top_k(const RatioMap& query,
                                                   std::size_t k) const;
  [[nodiscard]] std::size_t comparable_count(const RatioMap& query) const;

  [[nodiscard]] FlatMatrix<double> scores_batch(
      std::span<const RatioMap> queries, ThreadPool* pool = nullptr,
      std::uint64_t* maps_touched = nullptr,
      std::size_t tile = engine_detail::kQueryTile) const;
  void scores_of_batch(std::span<const std::size_t> rows,
                       FlatMatrix<double>& out, ThreadPool* pool = nullptr,
                       std::uint64_t* maps_touched = nullptr,
                       std::size_t tile = engine_detail::kQueryTile) const;
  [[nodiscard]] std::vector<std::vector<RankedCandidate>> topk_batch(
      std::span<const RatioMap> queries, std::size_t k,
      ThreadPool* pool = nullptr, std::uint64_t* maps_touched = nullptr,
      std::size_t tile = engine_detail::kQueryTile) const;

  // --- storage-identity probes (tests of structural sharing only) ---

  [[nodiscard]] const void* rows_identity() const { return rows_.get(); }
  [[nodiscard]] const void* entries_identity() const { return entries_.get(); }
  [[nodiscard]] const void* postings_identity() const { return post_.get(); }

 private:
  friend class SimilarityEngine;  // the only producer
  EngineSnapshot() = default;

  [[nodiscard]] engine_detail::CorpusView view() const {
    return engine_detail::CorpusView{kind_,       *rows_, *entries_,
                                     *norms_,     *strongest_,
                                     replica_slot_.get(), *post_,
                                     live_rows_};
  }

  SimilarityKind kind_ = SimilarityKind::kCosine;
  std::uint64_t epoch_ = 0;
  std::size_t live_rows_ = 0;
  std::size_t live_replicas_ = 0;

  // Frozen storage, component-shared across consecutive freezes. Three
  // components dirty independently: row metadata (rows/norms/strongest),
  // the CSR entry array, and the posting index (slot map + lists).
  std::shared_ptr<const std::vector<engine_detail::Row>> rows_;
  std::shared_ptr<const std::vector<RatioMap::Entry>> entries_;
  std::shared_ptr<const std::vector<double>> norms_;
  std::shared_ptr<const std::vector<double>> strongest_;
  std::shared_ptr<const std::unordered_map<ReplicaId, std::uint32_t>>
      replica_slot_;
  std::shared_ptr<const std::vector<engine_detail::PostingList>> post_;
};

}  // namespace crp::core
