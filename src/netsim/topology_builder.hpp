// Procedural topology generation.
//
// Builds a world with a realistic continental layout: eleven default
// regions with population weights and (crucially for CRP) uneven CDN
// coverage, tiered autonomous systems inside each region, and PoPs
// scattered around region centers. Host placement helpers then drop
// endpoints of each experimental role onto the topology.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "netsim/topology.hpp"

namespace crp::netsim {

/// Parameters for `build_topology`.
struct TopologyConfig {
  std::uint64_t seed = 1;
  /// If empty, `default_world_regions()` is used.
  std::vector<Region> regions;
  /// ASes per unit of region population weight (min 1 per region). The
  /// default gives a few hundred ASes — enough that broadly distributed
  /// hosts rarely share one, as on the real Internet (this drives the
  /// ASN-clustering baseline's behaviour in Table I).
  double ases_per_weight = 30.0;
  /// Fraction of ASes that are tier-1 / tier-2 (rest tier-3).
  double tier1_fraction = 0.1;
  double tier2_fraction = 0.4;
  /// PoPs per AS by tier (tier-1 ASes are the largest).
  int pops_tier1 = 8;
  int pops_tier2 = 4;
  int pops_tier3 = 2;
};

/// The default world: region name, location, weight, CDN coverage.
/// Coverage below ~0.3 models the paper's poorly-served regions
/// (the New-Zealand/Iceland tails of Figs. 4-5).
[[nodiscard]] std::vector<Region> default_world_regions();

/// Generates regions, ASes and PoPs (no hosts yet).
[[nodiscard]] Topology build_topology(const TopologyConfig& config);

/// Host-placement distribution knobs.
struct PlacementConfig {
  /// One-way access latency, log-normal parameters per host kind.
  /// Defaults: infra/DNS servers sit close to the PoP; clients are on
  /// access links with several milliseconds.
  double infra_mu = -0.7, infra_sigma = 0.5;      // ~0.3-1.2 ms
  double resolver_mu = 0.0, resolver_sigma = 0.7;  // ~0.5-3 ms
  double client_mu = 1.6, client_sigma = 0.5;      // ~3-10 ms
  double replica_mu = -1.6, replica_sigma = 0.3;   // ~0.15-0.3 ms
};

/// Places `count` hosts of `kind` on the topology. Regions are chosen in
/// proportion to population weight, then a uniformly random PoP inside the
/// region; the host is scattered within ~60 km of the PoP. Returns the new
/// host IDs in creation order.
std::vector<HostId> place_hosts(Topology& topo, HostKind kind,
                                std::size_t count, Rng& rng,
                                const PlacementConfig& placement = {});

/// Places one host at the given PoP (used by the CDN deployment, which
/// chooses PoPs itself).
HostId place_host_at_pop(Topology& topo, HostKind kind, PopId pop, Rng& rng,
                         const PlacementConfig& placement = {});

/// Like `place_hosts`, but restricted to the named regions (e.g. to model
/// a PlanetLab-style deployment concentrated in a few well-connected
/// areas). Throws if no named region exists.
std::vector<HostId> place_hosts_in_regions(
    Topology& topo, HostKind kind, std::size_t count, Rng& rng,
    const std::vector<std::string>& region_names,
    const PlacementConfig& placement = {});

}  // namespace crp::netsim
