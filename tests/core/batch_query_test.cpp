// Randomized oracles for the batched query kernels (DESIGN.md §6):
// scores_batch / scores_of_batch / topk_batch must be bit-identical to
// their per-query scalar twins for every metric, corpus shape (including
// mutated and dead rows), tile size and pool size.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/similarity_engine.hpp"

namespace crp::core {
namespace {

std::vector<RatioMap> random_corpus(Rng& rng, std::size_t n,
                                    std::uint32_t id_space) {
  std::vector<RatioMap> maps;
  maps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform(0.0, 1.0) < 0.1) {
      maps.emplace_back();  // empty map: dead row, scores 0
      continue;
    }
    std::vector<RatioMap::Entry> entries;
    const int k = static_cast<int>(rng.uniform_int(1, 8));
    const std::uint32_t lo = rng.uniform(0.0, 1.0) < 0.5 ? id_space / 2 : 0;
    for (int j = 0; j < k; ++j) {
      entries.emplace_back(
          ReplicaId{lo + static_cast<std::uint32_t>(
                             rng.uniform_int(0, id_space / 2 - 1))},
          rng.uniform(0.05, 1.0));
    }
    maps.push_back(RatioMap::from_ratios(entries));
  }
  return maps;
}

void expect_same_ranked(const std::vector<RankedCandidate>& got,
                        const std::vector<RankedCandidate>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index) << "rank " << i;
    EXPECT_EQ(got[i].similarity, want[i].similarity) << "rank " << i;
  }
}

class BatchQueryOracleTest
    : public ::testing::TestWithParam<SimilarityKind> {};

TEST_P(BatchQueryOracleTest, BatchKernelsMatchScalarBitForBit) {
  const SimilarityKind kind = GetParam();
  Rng rng{hash_combine({424242, static_cast<std::uint64_t>(kind)})};

  for (const std::size_t corpus_size :
       {std::size_t{1}, std::size_t{13}, std::size_t{90}}) {
    auto corpus = random_corpus(rng, corpus_size, 32);
    SimilarityEngine engine{corpus, kind};
    // Churn some rows so tombstoned postings and updated norms are part
    // of the oracle, mirroring a live service corpus.
    for (std::size_t i = 0; i < corpus_size; ++i) {
      const double roll = rng.uniform(0.0, 1.0);
      if (roll < 0.1) {
        engine.remove(i);
      } else if (roll < 0.25) {
        auto fresh = random_corpus(rng, 1, 32)[0];
        engine.update(i, fresh);
        corpus[i] = std::move(fresh);
      }
    }

    // External queries (scores_batch / topk_batch) plus corpus rows
    // (scores_of_batch), larger than one tile to force tiling.
    const auto queries = random_corpus(rng, 70, 32);
    std::vector<std::size_t> rows;
    for (std::size_t j = 0; j < 70; ++j) {
      rows.push_back(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(corpus_size) - 1)));
    }

    // Scalar baselines (and their touched-maps accounting).
    std::uint64_t scalar_touched = 0;
    FlatMatrix<double> scores_ref(queries.size(), engine.size());
    for (std::size_t j = 0; j < queries.size(); ++j) {
      std::size_t touched = 0;
      engine.scores(queries[j], scores_ref.row(j), &touched);
      scalar_touched += touched;
    }
    std::uint64_t scalar_rows_touched = 0;
    FlatMatrix<double> scores_of_ref(rows.size(), engine.size());
    for (std::size_t j = 0; j < rows.size(); ++j) {
      std::size_t touched = 0;
      engine.scores_of(rows[j], scores_of_ref.row(j), &touched);
      scalar_rows_touched += touched;
    }
    std::vector<std::vector<RankedCandidate>> topk_ref;
    for (const RatioMap& q : queries) topk_ref.push_back(engine.top_k(q, 4));

    for (const std::size_t tile :
         {std::size_t{1}, std::size_t{3}, std::size_t{32}, std::size_t{64},
          std::size_t{100}}) {
      for (const std::size_t workers :
           {std::size_t{0}, std::size_t{1}, std::size_t{4}}) {
        ThreadPool pool{workers};
        SCOPED_TRACE(::testing::Message()
                     << "kind=" << static_cast<int>(kind)
                     << " corpus=" << corpus_size << " tile=" << tile
                     << " workers=" << workers);

        std::uint64_t touched = 0;
        EXPECT_EQ(engine.scores_batch(queries, &pool, &touched, tile),
                  scores_ref);
        EXPECT_EQ(touched, scalar_touched);

        touched = 0;
        FlatMatrix<double> block;
        engine.scores_of_batch(rows, block, &pool, &touched, tile);
        EXPECT_EQ(block, scores_of_ref);
        EXPECT_EQ(touched, scalar_rows_touched);

        touched = 0;
        const auto topk =
            engine.topk_batch(queries, 4, &pool, &touched, tile);
        EXPECT_EQ(touched, scalar_touched);
        ASSERT_EQ(topk.size(), topk_ref.size());
        for (std::size_t j = 0; j < topk.size(); ++j) {
          expect_same_ranked(topk[j], topk_ref[j]);
        }
      }
    }
  }
}

TEST_P(BatchQueryOracleTest, SingleQueryTopKMatchesFullSortWithTies) {
  // Heavily tied corpus: duplicated maps make equal similarities common,
  // so the bounded heap's (similarity desc, index asc) tie-break is
  // actually exercised against the stable-sort baseline.
  const SimilarityKind kind = GetParam();
  std::vector<RatioMap> corpus;
  for (int copy = 0; copy < 4; ++copy) {
    for (std::uint32_t base = 0; base < 5; ++base) {
      corpus.push_back(RatioMap::from_ratios(
          std::vector<RatioMap::Entry>{{ReplicaId{base}, 0.5},
                                       {ReplicaId{base + 1}, 0.5}}));
    }
  }
  const SimilarityEngine engine{corpus, kind};
  const auto query = RatioMap::from_ratios(std::vector<RatioMap::Entry>{
      {ReplicaId{1}, 0.6}, {ReplicaId{3}, 0.4}});

  const auto ranked = engine.rank_all(query);
  for (const std::size_t k : {std::size_t{1}, std::size_t{7},
                              std::size_t{20}, std::size_t{50}}) {
    const auto top = engine.top_k(query, k);
    ASSERT_EQ(top.size(), std::min(k, ranked.size()));
    for (std::size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(top[i].index, ranked[i].index) << "k=" << k << " i=" << i;
      EXPECT_EQ(top[i].similarity, ranked[i].similarity);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, BatchQueryOracleTest,
                         ::testing::Values(SimilarityKind::kCosine,
                                           SimilarityKind::kJaccard,
                                           SimilarityKind::kWeightedOverlap));

TEST(BatchQueryTest, EmptyQueryListAndEmptyEngine) {
  const SimilarityEngine empty_engine{std::vector<RatioMap>{},
                                      SimilarityKind::kCosine};
  const std::vector<RatioMap> no_queries;
  EXPECT_EQ(empty_engine.scores_batch(no_queries).rows(), 0u);
  EXPECT_TRUE(empty_engine.topk_batch(no_queries, 3).empty());

  const auto one = RatioMap::from_ratios(
      std::vector<RatioMap::Entry>{{ReplicaId{1}, 1.0}});
  const std::vector<RatioMap> queries{one, RatioMap{}};
  const auto block = empty_engine.scores_batch(queries);
  EXPECT_EQ(block.rows(), 2u);
  EXPECT_EQ(block.cols(), 0u);
  const auto topk = empty_engine.topk_batch(queries, 3);
  ASSERT_EQ(topk.size(), 2u);
  EXPECT_TRUE(topk[0].empty());
  EXPECT_TRUE(topk[1].empty());
}

}  // namespace
}  // namespace crp::core
