// Determinism and inertness of fault-injected campaigns (DESIGN.md §7).
//
// The fault plan's contract is that every fault draw is a pure hash of
// (seed, rule, entities, epoch, attempt) — so a chaos campaign must be
// bit-identical across the sequential path and thread pools of any
// size, and an empty plan must change nothing at all relative to a
// world that never heard of faults.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "common/thread_pool.hpp"
#include "eval/world.hpp"
#include "sim/fault_plan.hpp"

namespace crp::eval {
namespace {

WorldConfig small_config(std::uint64_t seed) {
  WorldConfig config;
  config.seed = seed;
  config.num_candidates = 8;
  config.num_dns_servers = 14;
  config.cdn.target_replicas = 100;
  return config;
}

constexpr SimTime kStart = SimTime::epoch();
const SimTime kEnd = SimTime::epoch() + Hours(3);
const Duration kInterval = Minutes(30);

/// Everything a fault-injected campaign is required to reproduce
/// bit-for-bit. Wall time, pool size, and the oracle's thread-local
/// pair-cache stats are deliberately absent — they legitimately differ
/// across pool sizes.
struct FaultDigest {
  struct PerNode {
    core::RatioMap ratio_map;
    std::size_t num_probes = 0;
    std::size_t failed_lookups = 0;
    std::size_t queries_sent = 0;
    std::size_t retries = 0;
    std::size_t timeouts = 0;
    std::size_t outage_refusals = 0;
  };
  std::vector<PerNode> nodes;
  std::size_t cdn_queries = 0;
  std::size_t dns_retries = 0;
  std::size_t dns_timeouts = 0;
  std::size_t dns_outage_refusals = 0;
  std::size_t failed_probes = 0;
};

FaultDigest run_chaos_campaign(std::uint64_t seed, double intensity,
                               ThreadPool* pool, bool sequential) {
  WorldConfig config = small_config(seed);
  config.faults = sim::FaultPlan::chaos(seed + 1, intensity, kStart, kEnd);
  World world{std::move(config)};
  if (sequential) {
    world.run_probing_sequential(kStart, kEnd, kInterval);
  } else {
    world.run_probing_parallel(kStart, kEnd, kInterval, pool);
  }

  FaultDigest digest;
  for (HostId h : world.participants()) {
    const core::CrpNode& node = world.crp_node(h);
    const dns::RecursiveResolver& resolver = world.resolver(h);
    digest.nodes.push_back({node.ratio_map(), node.history().num_probes(),
                            node.failed_lookups(), resolver.queries_sent(),
                            resolver.retries(), resolver.timeouts(),
                            resolver.outage_refusals()});
  }
  digest.cdn_queries = world.cdn_queries_served();
  const CampaignStats& stats = world.campaign_stats();
  digest.dns_retries = stats.dns_retries;
  digest.dns_timeouts = stats.dns_timeouts;
  digest.dns_outage_refusals = stats.dns_outage_refusals;
  digest.failed_probes = stats.failed_probes;
  return digest;
}

void expect_identical(const FaultDigest& a, const FaultDigest& b) {
  EXPECT_EQ(a.cdn_queries, b.cdn_queries);
  EXPECT_EQ(a.dns_retries, b.dns_retries);
  EXPECT_EQ(a.dns_timeouts, b.dns_timeouts);
  EXPECT_EQ(a.dns_outage_refusals, b.dns_outage_refusals);
  EXPECT_EQ(a.failed_probes, b.failed_probes);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    SCOPED_TRACE("participant index " + std::to_string(i));
    EXPECT_EQ(a.nodes[i].ratio_map, b.nodes[i].ratio_map);
    EXPECT_EQ(a.nodes[i].num_probes, b.nodes[i].num_probes);
    EXPECT_EQ(a.nodes[i].failed_lookups, b.nodes[i].failed_lookups);
    EXPECT_EQ(a.nodes[i].queries_sent, b.nodes[i].queries_sent);
    EXPECT_EQ(a.nodes[i].retries, b.nodes[i].retries);
    EXPECT_EQ(a.nodes[i].timeouts, b.nodes[i].timeouts);
    EXPECT_EQ(a.nodes[i].outage_refusals, b.nodes[i].outage_refusals);
  }
}

class FaultCampaign : public ::testing::TestWithParam<std::uint64_t> {};

// The acceptance-criteria oracle: with a chaotic plan armed, the
// sequential scheduler run and pools of size 0, 1, and 4 all agree
// bit-for-bit — on ratio maps AND on every fault counter.
TEST_P(FaultCampaign, DeterministicAcrossPoolSizes) {
  const std::uint64_t seed = GetParam();
  const double intensity = 0.3;
  const FaultDigest sequential =
      run_chaos_campaign(seed, intensity, nullptr, /*sequential=*/true);

  // Faults must actually be firing or this test proves nothing.
  EXPECT_GT(sequential.dns_retries, 0u);
  EXPECT_GT(sequential.dns_timeouts + sequential.dns_outage_refusals, 0u);
  EXPECT_GT(sequential.failed_probes, 0u);

  for (const std::size_t threads : {0u, 1u, 4u}) {
    SCOPED_TRACE("pool size " + std::to_string(threads));
    ThreadPool pool{threads};
    const FaultDigest parallel =
        run_chaos_campaign(seed, intensity, &pool, /*sequential=*/false);
    expect_identical(sequential, parallel);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultCampaign,
                         ::testing::Values(101u, 977u));

// Inertness: a zero-intensity chaos plan is empty, and an empty plan is
// never armed — the campaign must match a plain no-fault world on every
// byte, and every fault counter must stay zero.
TEST(FaultCampaign, EmptyPlanMatchesNoFaultWorldExactly) {
  const FaultDigest with_empty_plan =
      run_chaos_campaign(55, /*intensity=*/0.0, nullptr, /*sequential=*/true);

  World plain{small_config(55)};
  plain.run_probing_sequential(kStart, kEnd, kInterval);
  FaultDigest baseline;
  for (HostId h : plain.participants()) {
    const core::CrpNode& node = plain.crp_node(h);
    const dns::RecursiveResolver& resolver = plain.resolver(h);
    baseline.nodes.push_back({node.ratio_map(), node.history().num_probes(),
                              node.failed_lookups(), resolver.queries_sent(),
                              resolver.retries(), resolver.timeouts(),
                              resolver.outage_refusals()});
  }
  baseline.cdn_queries = plain.cdn_queries_served();
  expect_identical(with_empty_plan, baseline);

  EXPECT_EQ(with_empty_plan.dns_retries, 0u);
  EXPECT_EQ(with_empty_plan.dns_timeouts, 0u);
  EXPECT_EQ(with_empty_plan.dns_outage_refusals, 0u);
}

// End-to-end drain: a replica drained for the whole campaign must never
// appear in any participant's redirection history — redirection consults
// health, which consults the plan.
TEST(FaultCampaign, DrainedReplicaLeavesEveryCandidateSet) {
  // Calibrate: run fault-free, find the most-redirected *edge* replica
  // (fallbacks bypass health on purpose), then re-run the identical
  // world with that replica drained for the whole campaign.
  std::unordered_map<std::uint32_t, std::size_t> seen;
  {
    World world{small_config(7)};
    world.run_probing_parallel(kStart, kEnd, kInterval);
    for (HostId h : world.participants()) {
      const core::RedirectionHistory& history = world.crp_node(h).history();
      for (std::size_t i = 0; i < history.num_probes(); ++i) {
        for (ReplicaId r : history.probe(i).replicas) {
          if (!world.deployment().is_origin_fallback(r)) ++seen[r.value()];
        }
      }
    }
  }
  ASSERT_FALSE(seen.empty());
  const auto hottest = std::max_element(
      seen.begin(), seen.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  const ReplicaId drained{hottest->first};
  ASSERT_GT(hottest->second, 0u);

  WorldConfig config = small_config(7);
  sim::FaultRule drain;
  drain.kind = sim::FaultKind::kReplicaDrain;
  drain.entity = drained.value();
  config.faults = sim::FaultPlan{1};
  config.faults.add(drain);
  World world{std::move(config)};
  world.run_probing_parallel(kStart, kEnd, kInterval);

  bool saw_any_replica = false;
  for (HostId h : world.participants()) {
    const core::RedirectionHistory& history = world.crp_node(h).history();
    for (std::size_t i = 0; i < history.num_probes(); ++i) {
      for (ReplicaId r : history.probe(i).replicas) {
        saw_any_replica = true;
        EXPECT_NE(r, drained);
      }
    }
  }
  EXPECT_TRUE(saw_any_replica);  // the campaign itself worked
}

// Degraded campaigns still position: at moderate chaos the probes that
// survive keep producing usable ratio maps for most participants.
TEST(FaultCampaign, ModerateChaosKeepsMostMapsUsable) {
  WorldConfig config = small_config(31);
  config.faults = sim::FaultPlan::chaos(32, 0.3, kStart, kEnd);
  World world{std::move(config)};
  world.run_probing_parallel(kStart, kEnd, kInterval);

  std::size_t usable = 0;
  std::size_t total = 0;
  for (HostId h : world.participants()) {
    ++total;
    if (!world.crp_node(h).ratio_map().empty()) ++usable;
  }
  EXPECT_GT(usable * 10, total * 8);  // >80% of nodes still have maps
}

}  // namespace
}  // namespace crp::eval
