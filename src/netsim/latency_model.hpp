// RTT derivation: static path model plus deterministic dynamics.
//
// `LatencyOracle` answers "what is the RTT between hosts a and b at sim
// time t?" for every subsystem: the CDN's measurement subsystem, Meridian's
// direct probes, King's estimates and the evaluation's ground truth all see
// the *same* underlying network, differing only in their own noise terms.
//
// The static component models access links, great-circle propagation with
// path inflation, AS peering and transit penalties, inter-region backbone
// quality and rare per-pair routing quirks (triangle-inequality
// violations). The dynamic component adds PoP-level congestion episodes
// and per-query jitter. Dynamics are *stateless*: they are pure hash
// functions of (entities, time epoch), so the oracle can be queried for any
// time in any order and always returns the same answer — which is what
// makes week-long simulated studies reproducible.
#pragma once

#include <cstdint>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "netsim/topology.hpp"
#include "sim/fault_plan.hpp"

namespace crp::netsim {

struct LatencyConfig {
  std::uint64_t seed = 1;

  // --- static path model ---
  /// RTT between two hosts on the same PoP, before access links (ms).
  double same_pop_rtt_ms = 0.4;
  /// Multiplier on great-circle propagation for intra-AS paths.
  double intra_as_inflation = 1.25;
  /// ... for intra-region, inter-AS paths.
  double intra_region_inflation = 1.5;
  /// ... for inter-region paths (backbones are straighter).
  double inter_region_inflation = 1.35;
  /// Extra RTT per AS-peering crossing (ms).
  double peering_penalty_ms = 1.5;
  /// Extra RTT when an endpoint sits in a tier-3 (stub) AS (ms).
  double tier3_transit_penalty_ms = 2.0;
  /// Extra RTT for leaving/entering a region backbone (ms).
  double inter_region_penalty_ms = 4.0;
  /// Fraction of region pairs with poor interconnection (routed
  /// circuitously, e.g. via a third continent).
  double bad_interconnect_fraction = 0.15;
  double bad_interconnect_max_inflation = 1.7;
  /// Fraction of host pairs with a per-pair routing quirk.
  double quirk_probability = 0.05;
  double quirk_max_inflation = 2.2;

  // --- dynamics ---
  /// Log-normal sigma of multiplicative per-query jitter.
  double jitter_sigma = 0.06;
  /// Granularity at which jitter re-randomizes.
  Duration jitter_epoch = Seconds(10);
  /// Probability a PoP is congested during a given congestion epoch.
  double congestion_probability = 0.08;
  /// Maximum relative RTT increase while congested.
  double congestion_max_extra = 0.5;
  Duration congestion_epoch = Minutes(30);

  /// Slow routing drift: a per-PoP-pair multiplicative factor
  /// exp(sigma * z) redrawn every `route_shift_epoch`. Models BGP path
  /// changes / re-homing that re-rank which replicas are closest over
  /// days — the "variable network dynamics" that make long redirection
  /// histories stale (paper §VI, Fig. 9 discussion). Off by default.
  double route_shift_sigma = 0.0;
  Duration route_shift_epoch = Hours(12);

  /// Memoize `base_rtt_ms` in a bounded per-thread pair cache. The static
  /// RTT is time-independent and deterministic, so caching cannot change
  /// any result; the flag exists only for A/B benchmarking
  /// (`micro_campaign`) and cache-neutrality tests.
  bool pair_cache = true;
};

/// Hit/miss counters of the thread-local base-RTT pair caches,
/// aggregated across every thread that has queried an oracle.
/// Observability only — never feeds back into results.
struct PairCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Deterministic latency oracle over a fixed topology (see file comment).
/// Thread-safe: all methods are const; the only mutable state is a
/// per-thread `base_rtt_ms` memo (never shared across threads) plus its
/// relaxed-atomic hit/miss counters.
class LatencyOracle {
 public:
  /// The topology must outlive the oracle.
  LatencyOracle(const Topology& topo, LatencyConfig config);

  /// Static RTT (no congestion/jitter), in milliseconds. Symmetric;
  /// zero for a == b. Served from a bounded per-thread pair cache when
  /// `LatencyConfig::pair_cache` is on (bit-identical either way).
  [[nodiscard]] double base_rtt_ms(HostId a, HostId b) const;

  /// RTT at sim time `t`, including congestion and jitter, milliseconds.
  [[nodiscard]] double rtt_ms(HostId a, HostId b, SimTime t) const;

  [[nodiscard]] Duration base_rtt(HostId a, HostId b) const {
    return MillisF(base_rtt_ms(a, b));
  }
  [[nodiscard]] Duration rtt(HostId a, HostId b, SimTime t) const {
    return MillisF(rtt_ms(a, b, t));
  }

  /// Congestion multiplier contribution of a single host's PoP at `t`
  /// (>= 0; 0 means uncongested). Exposed for tests and diagnostics.
  [[nodiscard]] double congestion_extra(HostId h, SimTime t) const;

  /// Slow route-shift multiplier for the pair's PoPs at `t` (1.0 when
  /// route_shift_sigma is 0). Exposed for tests.
  [[nodiscard]] double route_shift_factor(HostId a, HostId b,
                                          SimTime t) const;

  // --- fault injection (DESIGN.md §7) ---
  /// Arms deterministic network faults: with a plan attached,
  /// `link_out`/`send_lost` consult it. RTT values themselves are
  /// untouched — network faults model packets that never arrive, not
  /// slower ones — so an armed plan cannot perturb any latency result.
  /// `plan` must outlive the oracle; nullptr disarms.
  void set_fault_plan(const sim::FaultPlan* plan) { faults_ = plan; }
  [[nodiscard]] const sim::FaultPlan* fault_plan() const { return faults_; }

  /// Is the pair partitioned at `t` (sends cannot arrive)? Always false
  /// with no plan armed.
  [[nodiscard]] bool link_out(HostId a, HostId b, SimTime t) const {
    return faults_ != nullptr && faults_->link_out(a, b, t);
  }
  /// Is send `attempt` between the pair lost at `t`? Distinct attempts
  /// draw independently (bounded retries can recover from loss).
  [[nodiscard]] bool send_lost(HostId a, HostId b, SimTime t,
                               std::uint64_t attempt) const {
    return faults_ != nullptr && faults_->send_lost(a, b, t, attempt);
  }

  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] const LatencyConfig& config() const { return config_; }

  /// Aggregate pair-cache counters across all threads and oracles since
  /// process start (take a before/after delta to scope a campaign).
  [[nodiscard]] static PairCacheStats pair_cache_stats();

 private:
  [[nodiscard]] double base_rtt_uncached_ms(HostId a, HostId b) const;
  [[nodiscard]] double pair_quirk(HostId a, HostId b) const;
  [[nodiscard]] double region_interconnect(RegionId a, RegionId b) const;
  [[nodiscard]] double jitter_factor(HostId a, HostId b, SimTime t) const;

  const Topology* topo_;
  LatencyConfig config_;
  const sim::FaultPlan* faults_ = nullptr;
  /// Distinguishes this oracle's entries in the shared per-thread cache;
  /// unique per instance and never reused, so a destroyed oracle's stale
  /// entries can never match.
  std::uint64_t oracle_id_;
};

}  // namespace crp::netsim
