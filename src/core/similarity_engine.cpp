#include "core/similarity_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>

#include "common/thread_pool.hpp"
#include "core/engine_snapshot.hpp"

namespace crp::core {

using engine_detail::kDeadPosting;
using engine_detail::Posting;
using engine_detail::PostingList;
using engine_detail::Row;

SimilarityEngine::SimilarityEngine(SimilarityKind kind) : kind_(kind) {}

SimilarityEngine::SimilarityEngine(std::span<const RatioMap> corpus,
                                   SimilarityKind kind)
    : kind_(kind) {
  const std::size_t n = corpus.size();
  std::size_t total = 0;
  for (const RatioMap& map : corpus) total += map.size();

  rows_.reserve(n);
  entries_.reserve(total);
  norms_.reserve(n);
  strongest_.reserve(n);
  // Building via add() keeps each posting list ordered by row index
  // (insertion order), matching the historical static build.
  for (const RatioMap& map : corpus) (void)add(map);
  mstats_ = MutationStats{};  // a fresh build is not "mutation" churn
}

void SimilarityEngine::write_row(std::size_t index, const RowView& source) {
  Row& r = rows_[index];
  r.begin = entries_.size();
  r.len = static_cast<std::uint32_t>(source.entries.size());
  r.live = true;
  const auto src = source.entries;
  entries_.insert(entries_.end(), src.begin(), src.end());
  norms_[index] = source.norm;
  strongest_[index] = source.strongest;
  live_entries_ += src.size();
  ++rows_version_;
  ++entries_version_;
  ++postings_version_;

  for (const auto& [id, ratio] : src) {
    const auto [it, inserted] =
        replica_slot_.try_emplace(id, static_cast<std::uint32_t>(post_.size()));
    if (inserted) post_.emplace_back();
    PostingList& list = post_[it->second];
    if (list.live == 0) ++live_replicas_;
    ++list.live;
    list.items.push_back(
        Posting{static_cast<std::uint32_t>(index), ratio});
  }
}

void SimilarityEngine::tombstone_row(std::size_t index) {
  const Row& r = rows_[index];
  for (const auto& [id, ratio] : row(index)) {
    PostingList& list = post_[replica_slot_.at(id)];
    for (Posting& p : list.items) {
      // Tombstoned postings carry kDeadPosting, so this match finds the
      // row's single live posting for the replica.
      if (p.map == static_cast<std::uint32_t>(index)) {
        p.map = kDeadPosting;
        break;
      }
    }
    if (--list.live == 0) --live_replicas_;
    ++mstats_.postings_tombstoned;
  }
  dead_entries_ += r.len;
  live_entries_ -= r.len;
  // The orphaned entry segment's bytes are untouched, so only the
  // posting index dirties here (entries_version_ stays put — that is
  // what lets remove-only churn share the entry array across freezes).
  ++postings_version_;
}

std::size_t SimilarityEngine::add_impl(const RowView& source) {
  std::size_t index;
  if (!free_rows_.empty()) {
    index = free_rows_.back();
    free_rows_.pop_back();
  } else {
    index = rows_.size();
    rows_.emplace_back();
    norms_.push_back(0.0);
    strongest_.push_back(0.0);
  }
  write_row(index, source);
  ++live_rows_;
  ++mstats_.adds;
  return index;
}

std::size_t SimilarityEngine::add(const RatioMap& map) {
  return add_impl(RowView{map.entries(), map.norm(), map.strongest_mapping()});
}

std::size_t SimilarityEngine::add_row(const RowView& row) {
  return add_impl(row);
}

void SimilarityEngine::clear(SimilarityKind kind) {
  kind_ = kind;
  rows_.clear();
  entries_.clear();
  norms_.clear();
  strongest_.clear();
  free_rows_.clear();
  live_rows_ = 0;
  live_entries_ = 0;
  dead_entries_ = 0;
  // Keep the replica map's buckets and the posting-list vectors — the
  // whole point of clear() over a fresh engine is reusing them — but
  // empty every list.
  for (PostingList& list : post_) {
    list.items.clear();
    list.live = 0;
  }
  live_replicas_ = 0;
  mstats_ = MutationStats{};
  ++rows_version_;
  ++entries_version_;
  ++postings_version_;
}

void SimilarityEngine::update(std::size_t index, const RatioMap& map) {
  assert(index < rows_.size() && rows_[index].live);
  tombstone_row(index);
  write_row(index,
            RowView{map.entries(), map.norm(), map.strongest_mapping()});
  ++mstats_.updates;
  maybe_compact();
}

void SimilarityEngine::remove(std::size_t index) {
  assert(index < rows_.size() && rows_[index].live);
  tombstone_row(index);
  Row& r = rows_[index];
  r.live = false;
  r.len = 0;
  norms_[index] = 0.0;
  strongest_[index] = 0.0;
  free_rows_.push_back(static_cast<std::uint32_t>(index));
  --live_rows_;
  ++mstats_.removes;
  ++rows_version_;
  maybe_compact();
}

void SimilarityEngine::maybe_compact() {
  if (dead_entries_ >= kCompactMinDeadEntries &&
      dead_entries_ >= live_entries_) {
    compact();
  }
}

void SimilarityEngine::compact() {
  if (dead_entries_ == 0) return;
  // Repack live row segments in row order; dead rows keep their slot
  // (and their zero length), so no external index moves.
  std::vector<RatioMap::Entry> packed;
  packed.reserve(live_entries_);
  for (Row& r : rows_) {
    if (!r.live) continue;
    const std::size_t begin = packed.size();
    packed.insert(packed.end(), entries_.begin() + static_cast<std::ptrdiff_t>(r.begin),
                  entries_.begin() + static_cast<std::ptrdiff_t>(r.begin + r.len));
    r.begin = begin;
  }
  entries_ = std::move(packed);

  // Drop tombstoned postings, preserving the survivors' order.
  for (PostingList& list : post_) {
    std::erase_if(list.items,
                  [](const Posting& p) { return p.map == kDeadPosting; });
    list.items.shrink_to_fit();
  }
  dead_entries_ = 0;
  ++mstats_.compactions;
  ++rows_version_;
  ++entries_version_;
  ++postings_version_;
}

std::shared_ptr<const EngineSnapshot> SimilarityEngine::freeze(
    std::uint64_t epoch) {
  FreezeCache& c = freeze_cache_;
  const bool clean = c.snapshot != nullptr &&
                     c.rows_version == rows_version_ &&
                     c.entries_version == entries_version_ &&
                     c.postings_version == postings_version_;
  if (clean && c.snapshot->epoch() == epoch) return c.snapshot;

  auto snap = std::shared_ptr<EngineSnapshot>(new EngineSnapshot());
  snap->kind_ = kind_;
  snap->epoch_ = epoch;
  snap->live_rows_ = live_rows_;
  snap->live_replicas_ = live_replicas_;
  // Copy exactly the components a mutation dirtied since the retained
  // snapshot was cut; share the rest. The row-metadata component bundles
  // rows_/norms_/strongest_ (they dirty together).
  if (c.snapshot != nullptr && c.rows_version == rows_version_) {
    snap->rows_ = c.snapshot->rows_;
    snap->norms_ = c.snapshot->norms_;
    snap->strongest_ = c.snapshot->strongest_;
  } else {
    snap->rows_ = std::make_shared<const std::vector<Row>>(rows_);
    snap->norms_ = std::make_shared<const std::vector<double>>(norms_);
    snap->strongest_ = std::make_shared<const std::vector<double>>(strongest_);
  }
  if (c.snapshot != nullptr && c.entries_version == entries_version_) {
    snap->entries_ = c.snapshot->entries_;
  } else {
    snap->entries_ =
        std::make_shared<const std::vector<RatioMap::Entry>>(entries_);
  }
  if (c.snapshot != nullptr && c.postings_version == postings_version_) {
    snap->replica_slot_ = c.snapshot->replica_slot_;
    snap->post_ = c.snapshot->post_;
  } else {
    snap->replica_slot_ = std::make_shared<
        const std::unordered_map<ReplicaId, std::uint32_t>>(replica_slot_);
    snap->post_ = std::make_shared<const std::vector<PostingList>>(post_);
  }
  c.snapshot = snap;
  c.rows_version = rows_version_;
  c.entries_version = entries_version_;
  c.postings_version = postings_version_;
  return snap;
}

// --- query forwarding: every public query runs the shared kernels over
// --- this engine's CorpusView (bit-identity with EngineSnapshot by
// --- construction — same code, same storage bytes).

void SimilarityEngine::scores(const RatioMap& query, std::span<double> out,
                              std::size_t* touched_maps) const {
  engine_detail::dense_scores(view(), engine_detail::as_query(query), out,
                              touched_maps);
}

std::vector<double> SimilarityEngine::scores(const RatioMap& query) const {
  std::vector<double> out(size());
  scores(query, out);
  return out;
}

void SimilarityEngine::scores_of(std::size_t index, std::span<double> out,
                                 std::size_t* touched_maps) const {
  engine_detail::dense_scores(view(), row_view(index), out, touched_maps);
}

std::vector<double> SimilarityEngine::scores_of(std::size_t index) const {
  std::vector<double> out(size());
  scores_of(index, out);
  return out;
}

void SimilarityEngine::scores(const RowView& query, std::span<double> out,
                              std::size_t* touched_maps) const {
  engine_detail::dense_scores(view(), query, out, touched_maps);
}

void SimilarityEngine::scores_subset(const RatioMap& query,
                                     std::span<const std::size_t> subset,
                                     std::span<double> out,
                                     std::size_t* touched_maps) const {
  engine_detail::subset_scores(view(), engine_detail::as_query(query), subset,
                               out, touched_maps);
}

void SimilarityEngine::scores_of_subset(std::size_t index,
                                        std::span<const std::size_t> subset,
                                        std::span<double> out,
                                        std::size_t* touched_maps) const {
  engine_detail::subset_scores(view(), row_view(index), subset, out,
                               touched_maps);
}

std::optional<RankedCandidate> SimilarityEngine::best_match(
    const RowView& query, std::size_t* touched_maps) const {
  return engine_detail::best_match(view(), query, touched_maps);
}

std::vector<RankedCandidate> SimilarityEngine::rank_all(
    const RatioMap& query) const {
  return engine_detail::rank_all(view(), engine_detail::as_query(query));
}

std::vector<RankedCandidate> SimilarityEngine::top_k(const RatioMap& query,
                                                     std::size_t k) const {
  std::vector<RankedCandidate> out;
  engine_detail::top_k_into(view(), engine_detail::as_query(query), k, out);
  return out;
}

std::size_t SimilarityEngine::comparable_count(const RatioMap& query) const {
  return engine_detail::comparable_count(view(),
                                         engine_detail::as_query(query));
}

FlatMatrix<double> SimilarityEngine::scores_batch(
    std::span<const RatioMap> queries, ThreadPool* pool,
    std::uint64_t* maps_touched, std::size_t tile) const {
  std::vector<RowView> refs;
  refs.reserve(queries.size());
  for (const RatioMap& q : queries) refs.push_back(engine_detail::as_query(q));
  FlatMatrix<double> out(queries.size(), size());  // zero-initialised
  engine_detail::scores_batch(view(), refs, out, pool, maps_touched, tile);
  return out;
}

void SimilarityEngine::scores_of_batch(std::span<const std::size_t> rows,
                                       FlatMatrix<double>& out,
                                       ThreadPool* pool,
                                       std::uint64_t* maps_touched,
                                       std::size_t tile) const {
  std::vector<RowView> refs;
  refs.reserve(rows.size());
  for (const std::size_t index : rows) refs.push_back(row_view(index));
  out.assign(rows.size(), size(), 0.0);
  engine_detail::scores_batch(view(), refs, out, pool, maps_touched, tile);
}

std::vector<std::vector<RankedCandidate>> SimilarityEngine::topk_batch(
    std::span<const RatioMap> queries, std::size_t k, ThreadPool* pool,
    std::uint64_t* maps_touched, std::size_t tile) const {
  std::vector<RowView> refs;
  refs.reserve(queries.size());
  for (const RatioMap& q : queries) refs.push_back(engine_detail::as_query(q));
  return engine_detail::topk_batch(view(), refs, k, pool, maps_touched, tile);
}

std::vector<std::vector<RankedCandidate>> SimilarityEngine::all_top_k(
    std::size_t k, ThreadPool* pool) const {
  std::vector<std::vector<RankedCandidate>> out(size());
  const engine_detail::CorpusView v = view();
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(0, size(), [this, v, k, &out](std::size_t i) {
    engine_detail::top_k_into(v, row_view(i), k, out[i]);
  });
  return out;
}

FlatMatrix<double> SimilarityEngine::scores_many(
    std::span<const RatioMap> queries, ThreadPool* pool) const {
  FlatMatrix<double> out(queries.size(), size());
  const engine_detail::CorpusView v = view();
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(0, queries.size(), [v, queries, &out](std::size_t i) {
    engine_detail::dense_scores(v, engine_detail::as_query(queries[i]),
                                out.row(i), nullptr);
  });
  return out;
}

FlatMatrix<double> SimilarityEngine::pairwise_similarities(
    ThreadPool* pool) const {
  FlatMatrix<double> out(size(), size());
  const engine_detail::CorpusView v = view();
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(0, size(), [this, v, &out](std::size_t i) {
    engine_detail::dense_scores(v, row_view(i), out.row(i), nullptr);
  });
  return out;
}

}  // namespace crp::core
