#include "core/similarity_engine.hpp"

#include <algorithm>
#include <cstddef>

#include "common/thread_pool.hpp"

namespace crp::core {

// Reused across queries (thread_local, see scratch()): `mark`/`epoch`
// implement O(touched) clearing — a slot belongs to the current query only
// if mark[m] == epoch, so no O(corpus) zeroing per query is needed.
struct SimilarityEngine::Scratch {
  std::vector<double> acc;          // cosine / weighted-overlap partial sums
  std::vector<std::uint32_t> inter;  // jaccard intersection counts
  std::vector<std::uint64_t> mark;
  std::uint64_t epoch = 0;
  std::vector<std::uint32_t> touched;

  void begin(std::size_t n) {
    if (mark.size() < n) {
      mark.resize(n, 0);
      acc.resize(n, 0.0);
      inter.resize(n, 0);
    }
    ++epoch;
    touched.clear();
  }
};

SimilarityEngine::Scratch& SimilarityEngine::scratch() {
  static thread_local Scratch s;
  return s;
}

SimilarityEngine::SimilarityEngine(std::span<const RatioMap> corpus,
                                   SimilarityKind kind)
    : kind_(kind) {
  const std::size_t n = corpus.size();
  std::size_t total = 0;
  for (const RatioMap& map : corpus) total += map.size();

  offsets_.reserve(n + 1);
  offsets_.push_back(0);
  entries_.reserve(total);
  norms_.reserve(n);
  strongest_.reserve(n);
  for (const RatioMap& map : corpus) {
    const auto row = map.entries();
    entries_.insert(entries_.end(), row.begin(), row.end());
    offsets_.push_back(entries_.size());
    norms_.push_back(map.norm());
    strongest_.push_back(map.strongest_mapping());
  }

  replica_ids_.reserve(total);
  for (const auto& [id, ratio] : entries_) replica_ids_.push_back(id);
  std::sort(replica_ids_.begin(), replica_ids_.end());
  replica_ids_.erase(std::unique(replica_ids_.begin(), replica_ids_.end()),
                     replica_ids_.end());

  const std::size_t num_replicas = replica_ids_.size();
  post_offsets_.assign(num_replicas + 1, 0);
  for (const auto& [id, ratio] : entries_) {
    const auto it =
        std::lower_bound(replica_ids_.begin(), replica_ids_.end(), id);
    ++post_offsets_[static_cast<std::size_t>(it - replica_ids_.begin()) + 1];
  }
  for (std::size_t r = 0; r < num_replicas; ++r) {
    post_offsets_[r + 1] += post_offsets_[r];
  }
  post_map_.resize(total);
  post_ratio_.resize(total);
  std::vector<std::size_t> cursor{post_offsets_.begin(),
                                  post_offsets_.end() - 1};
  // Filling in map order keeps each posting list sorted by map index.
  for (std::size_t m = 0; m < n; ++m) {
    for (std::size_t e = offsets_[m]; e < offsets_[m + 1]; ++e) {
      const auto it = std::lower_bound(replica_ids_.begin(),
                                       replica_ids_.end(), entries_[e].first);
      const auto r = static_cast<std::size_t>(it - replica_ids_.begin());
      post_map_[cursor[r]] = static_cast<std::uint32_t>(m);
      post_ratio_[cursor[r]] = entries_[e].second;
      ++cursor[r];
    }
  }
}

void SimilarityEngine::accumulate(std::span<const RatioMap::Entry> entries,
                                  Scratch& s) const {
  s.begin(size());
  for (const auto& [id, q_ratio] : entries) {
    const auto it =
        std::lower_bound(replica_ids_.begin(), replica_ids_.end(), id);
    if (it == replica_ids_.end() || *it != id) continue;
    const auto r = static_cast<std::size_t>(it - replica_ids_.begin());
    const std::size_t lo = post_offsets_[r];
    const std::size_t hi = post_offsets_[r + 1];
    // Query entries arrive in increasing replica-id order, so each touched
    // map accumulates its shared replicas in exactly the order the
    // per-pair sorted merge visits them — scores stay bit-identical.
    switch (kind_) {
      case SimilarityKind::kCosine:
        for (std::size_t p = lo; p < hi; ++p) {
          const std::uint32_t m = post_map_[p];
          if (s.mark[m] != s.epoch) {
            s.mark[m] = s.epoch;
            s.acc[m] = 0.0;
            s.touched.push_back(m);
          }
          s.acc[m] += q_ratio * post_ratio_[p];
        }
        break;
      case SimilarityKind::kJaccard:
        for (std::size_t p = lo; p < hi; ++p) {
          const std::uint32_t m = post_map_[p];
          if (s.mark[m] != s.epoch) {
            s.mark[m] = s.epoch;
            s.inter[m] = 0;
            s.touched.push_back(m);
          }
          ++s.inter[m];
        }
        break;
      case SimilarityKind::kWeightedOverlap:
        for (std::size_t p = lo; p < hi; ++p) {
          const std::uint32_t m = post_map_[p];
          if (s.mark[m] != s.epoch) {
            s.mark[m] = s.epoch;
            s.acc[m] = 0.0;
            s.touched.push_back(m);
          }
          s.acc[m] += std::min(q_ratio, post_ratio_[p]);
        }
        break;
    }
  }
}

double SimilarityEngine::score_touched(std::size_t m, double query_norm,
                                       std::size_t query_size,
                                       const Scratch& s) const {
  switch (kind_) {
    case SimilarityKind::kCosine: {
      const double denominator = query_norm * norms_[m];
      if (denominator <= 0.0) return 0.0;
      return std::clamp(s.acc[m] / denominator, 0.0, 1.0);
    }
    case SimilarityKind::kJaccard: {
      const std::size_t inter = s.inter[m];
      const std::size_t uni =
          query_size + (offsets_[m + 1] - offsets_[m]) - inter;
      if (uni == 0) return 0.0;
      return static_cast<double>(inter) / static_cast<double>(uni);
    }
    case SimilarityKind::kWeightedOverlap:
      return std::clamp(s.acc[m], 0.0, 1.0);
  }
  return 0.0;
}

void SimilarityEngine::scores(const RatioMap& query,
                              std::span<double> out) const {
  Scratch& s = scratch();
  accumulate(query.entries(), s);
  std::fill(out.begin(), out.end(), 0.0);
  const double query_norm = query.norm();
  for (const std::uint32_t m : s.touched) {
    out[m] = score_touched(m, query_norm, query.size(), s);
  }
}

std::vector<double> SimilarityEngine::scores(const RatioMap& query) const {
  std::vector<double> out(size());
  scores(query, out);
  return out;
}

void SimilarityEngine::scores_of(std::size_t index,
                                 std::span<double> out) const {
  Scratch& s = scratch();
  const auto entries = row(index);
  accumulate(entries, s);
  std::fill(out.begin(), out.end(), 0.0);
  for (const std::uint32_t m : s.touched) {
    out[m] = score_touched(m, norms_[index], entries.size(), s);
  }
}

std::vector<double> SimilarityEngine::scores_of(std::size_t index) const {
  std::vector<double> out(size());
  scores_of(index, out);
  return out;
}

std::vector<RankedCandidate> SimilarityEngine::rank_all(
    const RatioMap& query) const {
  // Same algorithm as rank_candidates, with the per-pair merges replaced
  // by one engine query: dense scores, then a stable descending sort.
  const std::vector<double> all = scores(query);
  std::vector<RankedCandidate> ranked;
  ranked.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    ranked.push_back(RankedCandidate{i, all[i]});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedCandidate& a, const RankedCandidate& b) {
                     return a.similarity > b.similarity;
                   });
  return ranked;
}

void SimilarityEngine::top_k_into(std::span<const RatioMap::Entry> entries,
                                  double query_norm, std::size_t query_size,
                                  std::size_t k,
                                  std::vector<RankedCandidate>& out) const {
  out.clear();
  const std::size_t want = std::min(k, size());
  if (want == 0) return;

  Scratch& s = scratch();
  accumulate(entries, s);
  std::vector<RankedCandidate> positives;
  positives.reserve(s.touched.size());
  for (const std::uint32_t m : s.touched) {
    const double score = score_touched(m, query_norm, query_size, s);
    if (score > 0.0) positives.push_back(RankedCandidate{m, score});
  }
  // (similarity, index) pairs are unique per map, so this unstable sort is
  // a total order — the result matches rank_candidates' stable sort.
  std::sort(positives.begin(), positives.end(),
            [](const RankedCandidate& a, const RankedCandidate& b) {
              return a.similarity > b.similarity ||
                     (a.similarity == b.similarity && a.index < b.index);
            });

  const std::size_t from_positives = std::min(want, positives.size());
  out.assign(positives.begin(),
             positives.begin() + static_cast<std::ptrdiff_t>(from_positives));
  if (out.size() == want) return;

  // Pad with zero-similarity maps in corpus order (the order the stable
  // sort leaves ties in), skipping the maps already ranked.
  std::vector<std::uint32_t> taken;
  taken.reserve(positives.size());
  for (const RankedCandidate& rc : positives) {
    taken.push_back(static_cast<std::uint32_t>(rc.index));
  }
  std::sort(taken.begin(), taken.end());
  std::size_t next_taken = 0;
  for (std::size_t m = 0; m < size() && out.size() < want; ++m) {
    if (next_taken < taken.size() && taken[next_taken] == m) {
      ++next_taken;
      continue;
    }
    out.push_back(RankedCandidate{m, 0.0});
  }
}

std::vector<RankedCandidate> SimilarityEngine::top_k(const RatioMap& query,
                                                     std::size_t k) const {
  std::vector<RankedCandidate> out;
  top_k_into(query.entries(), query.norm(), query.size(), k, out);
  return out;
}

std::size_t SimilarityEngine::comparable_count(const RatioMap& query) const {
  Scratch& s = scratch();
  accumulate(query.entries(), s);
  std::size_t count = 0;
  for (const std::uint32_t m : s.touched) {
    // A touched map shares a replica, so its intersection (jaccard) or
    // partial sum (cosine, weighted overlap) is positive unless the
    // products underflowed — the same condition similarity() > 0 tests.
    if (kind_ == SimilarityKind::kJaccard ? s.inter[m] > 0
                                          : s.acc[m] > 0.0) {
      ++count;
    }
  }
  return count;
}

std::vector<std::vector<RankedCandidate>> SimilarityEngine::all_top_k(
    std::size_t k, ThreadPool* pool) const {
  std::vector<std::vector<RankedCandidate>> out(size());
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(0, size(), [this, k, &out](std::size_t i) {
    const auto entries = row(i);
    top_k_into(entries, norms_[i], entries.size(), k, out[i]);
  });
  return out;
}

std::vector<std::vector<double>> SimilarityEngine::pairwise_similarities(
    ThreadPool* pool) const {
  std::vector<std::vector<double>> out(size());
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(0, size(), [this, &out](std::size_t i) {
    out[i].resize(size());
    scores_of(i, out[i]);
  });
  return out;
}

}  // namespace crp::core
