// CrpNode: the client-side CRP agent.
//
// One CrpNode runs at each participating host. On every probe round it
// resolves the configured CDN customer names through its local recursive
// resolver, maps the answered A records back to replica identities, and
// appends the observation to its redirection history. The node issues
// O(1) DNS lookups per round regardless of system size — the scalability
// property the paper emphasizes — and can equally be fed passively
// observed lookups (`observe`) instead of active probes.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/ipv4.hpp"
#include "common/time.hpp"
#include "core/history.hpp"
#include "dns/name.hpp"
#include "dns/resolver.hpp"
#include "sim/event_scheduler.hpp"

namespace crp::core {

/// Maps an answered A-record address to the CDN replica identity, or
/// nullopt for addresses that are not CDN replicas.
using ReplicaLookup = std::function<std::optional<ReplicaId>(Ipv4)>;

struct CrpNodeConfig {
  /// Probe round interval when scheduled (Fig. 8 sweeps this).
  Duration probe_interval = Minutes(10);
  /// History bound (probes kept).
  std::size_t max_history = 8192;
};

class CrpNode {
 public:
  /// `resolver` must outlive the node. `names` are the CDN customer names
  /// to track; `lookup` maps answer addresses to replica IDs.
  CrpNode(dns::RecursiveResolver& resolver, std::vector<dns::Name> names,
          ReplicaLookup lookup, CrpNodeConfig config = {});

  /// Runs one probe round at `now`: resolves every tracked name and
  /// records the union of answered replicas as one probe. Returns the
  /// number of replica addresses recognized this round.
  std::size_t probe(SimTime now);

  /// Feeds a passively observed redirection (e.g. from user web traffic).
  void observe(SimTime now, std::span<const ReplicaId> replicas);

  /// Registers periodic probing on `sched` starting at `start` until
  /// `end`; returns the handle for cancellation.
  sim::EventHandle schedule(sim::EventScheduler& sched, SimTime start,
                            SimTime end);

  [[nodiscard]] const RedirectionHistory& history() const { return history_; }
  [[nodiscard]] RatioMap ratio_map(std::size_t window = kAllProbes) const {
    return history_.ratio_map(window);
  }
  [[nodiscard]] HostId host() const { return resolver_->host(); }
  [[nodiscard]] const std::vector<dns::Name>& names() const { return names_; }
  [[nodiscard]] const CrpNodeConfig& config() const { return config_; }

  /// Failed resolutions observed so far (diagnostics).
  [[nodiscard]] std::size_t failed_lookups() const { return failures_; }

 private:
  dns::RecursiveResolver* resolver_;
  std::vector<dns::Name> names_;
  ReplicaLookup lookup_;
  CrpNodeConfig config_;
  RedirectionHistory history_;
  std::size_t failures_ = 0;
};

}  // namespace crp::core
