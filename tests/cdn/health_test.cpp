#include "cdn/health.hpp"

#include <gtest/gtest.h>

namespace crp::cdn {
namespace {

TEST(ReplicaHealth, AlwaysAvailableWhenDisabled) {
  const ReplicaHealth health{HealthConfig{}};
  for (std::uint32_t r = 0; r < 100; ++r) {
    EXPECT_TRUE(health.available(ReplicaId{r}, SimTime::epoch()));
  }
}

TEST(ReplicaHealth, OutageFractionMatchesProbability) {
  HealthConfig config;
  config.seed = 1;
  config.outage_probability = 0.2;
  config.outage_epoch = Hours(6);
  const ReplicaHealth health{config};
  std::size_t down = 0;
  std::size_t total = 0;
  for (std::uint32_t r = 0; r < 200; ++r) {
    for (int e = 0; e < 20; ++e) {
      ++total;
      if (!health.available(ReplicaId{r}, SimTime::epoch() + Hours(6 * e))) {
        ++down;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(down) / static_cast<double>(total), 0.2,
              0.02);
}

TEST(ReplicaHealth, StableWithinEpoch) {
  HealthConfig config;
  config.seed = 2;
  config.outage_probability = 0.5;
  const ReplicaHealth health{config};
  for (std::uint32_t r = 0; r < 50; ++r) {
    const bool at_start =
        health.available(ReplicaId{r}, SimTime::epoch() + Minutes(1));
    const bool at_end =
        health.available(ReplicaId{r}, SimTime::epoch() + Hours(5));
    EXPECT_EQ(at_start, at_end);
  }
}

TEST(ReplicaHealth, IndependentAcrossReplicas) {
  HealthConfig config;
  config.seed = 3;
  config.outage_probability = 0.5;
  const ReplicaHealth health{config};
  bool any_up = false;
  bool any_down = false;
  for (std::uint32_t r = 0; r < 64; ++r) {
    if (health.available(ReplicaId{r}, SimTime::epoch())) {
      any_up = true;
    } else {
      any_down = true;
    }
  }
  EXPECT_TRUE(any_up);
  EXPECT_TRUE(any_down);
}

TEST(ReplicaHealth, DeterministicForSeed) {
  HealthConfig config;
  config.seed = 4;
  config.outage_probability = 0.3;
  const ReplicaHealth a{config};
  const ReplicaHealth b{config};
  for (std::uint32_t r = 0; r < 50; ++r) {
    EXPECT_EQ(a.available(ReplicaId{r}, SimTime::epoch() + Hours(7)),
              b.available(ReplicaId{r}, SimTime::epoch() + Hours(7)));
  }
}

TEST(ReplicaHealth, FaultPlanDrainsScheduledReplicas) {
  sim::FaultPlan plan{9};
  sim::FaultRule rule;
  rule.kind = sim::FaultKind::kReplicaDrain;
  rule.start = SimTime::epoch() + Hours(1);
  rule.end = SimTime::epoch() + Hours(2);
  rule.entity = 5;
  plan.add(rule);

  ReplicaHealth health{HealthConfig{}};
  health.set_fault_plan(&plan);
  // Drained only inside the window, and only replica 5.
  EXPECT_TRUE(health.available(ReplicaId{5}, SimTime::epoch()));
  EXPECT_FALSE(
      health.available(ReplicaId{5}, SimTime::epoch() + Minutes(90)));
  EXPECT_TRUE(health.available(ReplicaId{6}, SimTime::epoch() + Minutes(90)));
  EXPECT_TRUE(health.available(ReplicaId{5}, SimTime::epoch() + Hours(2)));

  // Disarming restores the original always-available behavior.
  health.set_fault_plan(nullptr);
  EXPECT_TRUE(health.available(ReplicaId{5}, SimTime::epoch() + Minutes(90)));
}

TEST(ReplicaHealth, HysteresisKeepsReturningReplicaOut) {
  sim::FaultPlan plan{9};
  sim::FaultRule rule;
  rule.kind = sim::FaultKind::kReplicaDrain;
  rule.start = SimTime::epoch() + Hours(1);
  rule.end = SimTime::epoch() + Hours(2);
  rule.entity = 5;
  plan.add(rule);

  HealthConfig config;
  config.readmit_hysteresis = Minutes(40);
  ReplicaHealth health{config};
  health.set_fault_plan(&plan);

  const SimTime back = SimTime::epoch() + Hours(2);
  // Instantaneously healthy again, but the trailing window still covers
  // the drain: redirection keeps it out...
  EXPECT_TRUE(health.raw_available(ReplicaId{5}, back + Minutes(10)));
  EXPECT_FALSE(health.available(ReplicaId{5}, back + Minutes(10)));
  // ...until it has been continuously healthy for the full window.
  EXPECT_TRUE(health.available(ReplicaId{5}, back + Minutes(41)));
  // Replicas that never drained are unaffected by hysteresis.
  EXPECT_TRUE(health.available(ReplicaId{6}, back + Minutes(10)));
}

TEST(ReplicaHealth, ZeroHysteresisReadmitsImmediately) {
  sim::FaultPlan plan{9};
  sim::FaultRule rule;
  rule.kind = sim::FaultKind::kReplicaDrain;
  rule.start = SimTime::epoch();
  rule.end = SimTime::epoch() + Hours(1);
  rule.entity = 3;
  plan.add(rule);

  ReplicaHealth health{HealthConfig{}};
  health.set_fault_plan(&plan);
  EXPECT_FALSE(health.available(ReplicaId{3}, SimTime::epoch()));
  EXPECT_TRUE(health.available(ReplicaId{3}, SimTime::epoch() + Hours(1)));
}

TEST(ReplicaHealth, HysteresisNearEpochDoesNotUnderflow) {
  HealthConfig config;
  config.readmit_hysteresis = Hours(10);
  const ReplicaHealth health{config};
  // Samples before SimTime::epoch() are skipped, not taken at negative
  // times: with no faults at all the replica stays available.
  EXPECT_TRUE(health.available(ReplicaId{1}, SimTime::epoch() + Minutes(5)));
}

}  // namespace
}  // namespace crp::cdn
