file(REMOVE_RECURSE
  "../bench/ablation_name_filtering"
  "../bench/ablation_name_filtering.pdb"
  "CMakeFiles/ablation_name_filtering.dir/ablation_name_filtering.cpp.o"
  "CMakeFiles/ablation_name_filtering.dir/ablation_name_filtering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_name_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
