#include "dns/name.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace crp::dns {

Name Name::parse(std::string_view text) {
  Name name;
  if (!text.empty() && text.back() == '.') text.remove_suffix(1);
  if (text.empty()) return name;  // root

  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t dot = text.find('.', start);
    const std::size_t end = dot == std::string_view::npos ? text.size() : dot;
    if (end == start) {
      throw std::invalid_argument{"Name::parse: empty label"};
    }
    if (end - start > 63) {
      throw std::invalid_argument{"Name::parse: label exceeds 63 octets"};
    }
    std::string label{text.substr(start, end - start)};
    std::transform(label.begin(), label.end(), label.begin(), [](char c) {
      return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    });
    name.labels_.push_back(std::move(label));
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return name;
}

bool Name::is_subdomain_of(const Name& suffix) const {
  if (suffix.labels_.size() > labels_.size()) return false;
  return std::equal(suffix.labels_.rbegin(), suffix.labels_.rend(),
                    labels_.rbegin());
}

Name Name::prefixed(std::string_view label) const {
  Name out = Name::parse(std::string{label});
  out.labels_.insert(out.labels_.end(), labels_.begin(), labels_.end());
  return out;
}

std::string Name::to_string() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i != 0) out += '.';
    out += labels_[i];
  }
  return out;
}

}  // namespace crp::dns
