// Figure 7: number of good clusters per diameter bucket (0-25 ms and
// 25-75 ms) for CRP (t = 0.1) vs ASN-based clustering.
#include <iostream>

#include "clustering_util.hpp"
#include "common/table.hpp"
#include "eval/series.hpp"

int main() {
  using namespace crp;
  constexpr std::uint64_t kSeed = 177;  // same run as Table I / Fig. 6

  eval::print_banner(std::cout,
                     "Good clusters per diameter bucket: CRP vs ASN",
                     "Figure 7 (ICDCS 2008)", kSeed);

  bench::ClusteringExperiment exp{kSeed};

  const auto crp_q = core::filter_by_diameter(
      core::evaluate_clusters(exp.crp_clustering(0.1), exp.distance()),
      75.0);
  const auto asn_q = core::filter_by_diameter(
      core::evaluate_clusters(exp.asn_clustering(), exp.distance()), 75.0);

  TextTable table;
  table.header({"cluster diameter range (ms)", "CRP", "ASN"});
  const std::size_t crp_b1 = core::count_good_in_bucket(crp_q, 0.0, 25.0);
  const std::size_t asn_b1 = core::count_good_in_bucket(asn_q, 0.0, 25.0);
  const std::size_t crp_b2 = core::count_good_in_bucket(crp_q, 25.0, 75.0);
  const std::size_t asn_b2 = core::count_good_in_bucket(asn_q, 25.0, 75.0);
  table.row({"0-25", fmt(crp_b1), fmt(asn_b1)});
  table.row({"25-75", fmt(crp_b2), fmt(asn_b2)});
  std::cout << "\n" << table.render();

  std::cout << "\npaper expectations: CRP finds >50% more good clusters in "
               "the 0-25 ms bucket\nand more than double in the 25-75 ms "
               "bucket (it clusters across AS boundaries).\n";
  if (asn_b1 > 0) {
    std::cout << "measured ratio 0-25 ms:  "
              << fmt(static_cast<double>(crp_b1) /
                     static_cast<double>(asn_b1))
              << "x\n";
  }
  if (asn_b2 > 0) {
    std::cout << "measured ratio 25-75 ms: "
              << fmt(static_cast<double>(crp_b2) /
                     static_cast<double>(asn_b2))
              << "x\n";
  }
  return 0;
}
