# Empty dependencies file for crp_sim.
# This may be replaced when dependencies are built.
