// Redirection histories and probe windows.
//
// A CRP node records each observed redirection (a timestamped set of
// replica IDs). Ratio maps are derived from the most recent `window`
// probes — the knob Fig. 9 sweeps (all / 30 / 10 / 5 probes). Section VI's
// finding that unbounded histories can *hurt* under dynamic conditions is
// why the window is first-class here rather than an afterthought.
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "core/ratio_map.hpp"

namespace crp::core {

/// One observed redirection: the replica set a single DNS answer named.
struct RedirectionProbe {
  SimTime when;
  std::vector<ReplicaId> replicas;
};

/// Use every recorded probe (no windowing).
inline constexpr std::size_t kAllProbes = 0;

/// Bounded log of redirection observations for one node.
class RedirectionHistory {
 public:
  /// `max_probes` bounds memory; the oldest probes are discarded beyond
  /// it (0 = unbounded).
  explicit RedirectionHistory(std::size_t max_probes = 4096);

  void record(SimTime when, std::span<const ReplicaId> replicas);

  [[nodiscard]] std::size_t num_probes() const { return probes_.size(); }
  [[nodiscard]] bool empty() const { return probes_.empty(); }
  [[nodiscard]] const RedirectionProbe& probe(std::size_t i) const {
    return probes_.at(i);
  }

  /// Ratio map over the last `window` probes (kAllProbes = everything).
  [[nodiscard]] RatioMap ratio_map(std::size_t window = kAllProbes) const;

  /// Ratio map over every `stride`-th probe, anchored on the most
  /// recent one (like `ratio_map(window)`, newest first). Probing at a
  /// k-times-longer interval observes exactly the k-strided subsequence
  /// of a base trace, which is how Fig. 8 derives all interval curves
  /// from one campaign. Anchoring on the newest probe keeps the sampled
  /// subsequence stable as the bounded deque drops old probes — an
  /// oldest-anchored stride shifts by one whenever eviction happens,
  /// churning the map for no behavioural reason. `stride` 0 or 1 uses
  /// everything.
  [[nodiscard]] RatioMap ratio_map_strided(std::size_t stride) const;

  /// Distinct replicas seen across the whole history.
  [[nodiscard]] std::size_t distinct_replicas() const;

  /// Time of first/last probe (epoch if empty).
  [[nodiscard]] SimTime first_probe_time() const;
  [[nodiscard]] SimTime last_probe_time() const;

  void clear() { probes_.clear(); }

 private:
  std::size_t max_probes_;
  std::deque<RedirectionProbe> probes_;
};

}  // namespace crp::core
