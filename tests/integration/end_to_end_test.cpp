// Integration tests: the full stack (topology -> CDN -> DNS -> CRP)
// exercised together, asserting the paper's qualitative claims hold in
// the simulated world.
#include <gtest/gtest.h>

#include <algorithm>

#include "asn/asn_clustering.hpp"
#include "core/cluster_quality.hpp"
#include "core/clustering.hpp"
#include "core/selection.hpp"
#include "eval/ground_truth.hpp"
#include "eval/metrics.hpp"
#include "eval/world.hpp"
#include "meridian/overlay.hpp"

namespace crp {
namespace {

// One shared world for the whole file: building + probing dominates the
// runtime, and every test here only reads from it.
class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::WorldConfig config;
    config.seed = 2026;
    config.num_candidates = 40;
    config.num_dns_servers = 80;
    config.cdn.target_replicas = 250;
    world_ = new eval::World{config};
    world_->run_probing(SimTime::epoch(), SimTime::epoch() + Hours(24),
                        Minutes(10));

    client_maps_ = new std::vector<core::RatioMap>;
    for (HostId h : world_->dns_servers()) {
      client_maps_->push_back(world_->crp_node(h).ratio_map());
    }
    candidate_maps_ = new std::vector<core::RatioMap>;
    for (HostId h : world_->candidates()) {
      candidate_maps_->push_back(world_->crp_node(h).ratio_map());
    }
    gt_ = new eval::GroundTruthMatrix{*world_, world_->dns_servers(),
                                      world_->candidates()};
  }

  static void TearDownTestSuite() {
    delete gt_;
    delete candidate_maps_;
    delete client_maps_;
    delete world_;
    gt_ = nullptr;
    candidate_maps_ = nullptr;
    client_maps_ = nullptr;
    world_ = nullptr;
  }

  static eval::World* world_;
  static std::vector<core::RatioMap>* client_maps_;
  static std::vector<core::RatioMap>* candidate_maps_;
  static eval::GroundTruthMatrix* gt_;
};

eval::World* EndToEndTest::world_ = nullptr;
std::vector<core::RatioMap>* EndToEndTest::client_maps_ = nullptr;
std::vector<core::RatioMap>* EndToEndTest::candidate_maps_ = nullptr;
eval::GroundTruthMatrix* EndToEndTest::gt_ = nullptr;

TEST_F(EndToEndTest, EveryParticipantBuiltARatioMap) {
  for (const core::RatioMap& m : *client_maps_) {
    EXPECT_FALSE(m.empty());
  }
  for (const core::RatioMap& m : *candidate_maps_) {
    EXPECT_FALSE(m.empty());
  }
}

TEST_F(EndToEndTest, HostsSeeSmallReplicaSets) {
  // Paper §III.B: hosts see a small set of replicas (< 20) frequently.
  std::size_t total = 0;
  for (HostId h : world_->dns_servers()) {
    total += world_->crp_node(h).history().distinct_replicas();
  }
  const double mean =
      static_cast<double>(total) /
      static_cast<double>(world_->dns_servers().size());
  EXPECT_LT(mean, 40.0);
  EXPECT_GT(mean, 2.0);
}

TEST_F(EndToEndTest, CrpSelectionFarBetterThanRandom) {
  const auto outcomes =
      eval::evaluate_crp_selection(*gt_, *client_maps_, *candidate_maps_);
  double crp_rank_sum = 0.0;
  for (const auto& o : outcomes) crp_rank_sum += o.rank;
  const double crp_mean_rank =
      crp_rank_sum / static_cast<double>(outcomes.size());
  // Random selection over 40 candidates has expected rank ~19.5; CRP must
  // be dramatically better.
  EXPECT_LT(crp_mean_rank, 8.0);
}

TEST_F(EndToEndTest, CosineSimilarityAnticorrelatesWithRtt) {
  // The core hypothesis: higher similarity <=> lower RTT.
  std::size_t consistent = 0;
  std::size_t total = 0;
  for (std::size_t c = 0; c < client_maps_->size(); c += 4) {
    for (std::size_t i = 0; i < candidate_maps_->size(); ++i) {
      for (std::size_t j = i + 1; j < candidate_maps_->size(); ++j) {
        const double si =
            core::cosine_similarity((*client_maps_)[c],
                                    (*candidate_maps_)[i]);
        const double sj =
            core::cosine_similarity((*client_maps_)[c],
                                    (*candidate_maps_)[j]);
        // Only judge decisively different similarities.
        if (std::abs(si - sj) < 0.2) continue;
        ++total;
        const bool rtt_agrees = (si > sj) == (gt_->rtt_ms(c, i) <
                                              gt_->rtt_ms(c, j));
        if (rtt_agrees) ++consistent;
      }
    }
  }
  ASSERT_GT(total, 100u);
  EXPECT_GT(static_cast<double>(consistent) / static_cast<double>(total),
            0.80);
}

TEST_F(EndToEndTest, CrpClusteringProducesGoodClusters) {
  core::SmfConfig config;
  config.threshold = 0.1;
  const core::Clustering clustering = core::smf_cluster(*client_maps_,
                                                        config);
  const auto rtt = [&](std::size_t i, std::size_t j) {
    return world_->ground_truth_rtt_ms(world_->dns_servers()[i],
                                       world_->dns_servers()[j]);
  };
  const auto qualities = core::filter_by_diameter(
      core::evaluate_clusters(clustering, rtt), 75.0);
  ASSERT_FALSE(qualities.empty());
  std::size_t good = 0;
  for (const auto& q : qualities) {
    if (q.good()) ++good;
  }
  // Most tight clusters must be genuinely good.
  EXPECT_GT(static_cast<double>(good) /
                static_cast<double>(qualities.size()),
            0.7);
}

TEST_F(EndToEndTest, CrpClustersMoreNodesThanAsn) {
  // Table I's headline: CRP clusters far more nodes than ASN-based
  // clustering because it can group across AS boundaries.
  core::SmfConfig config;
  config.threshold = 0.1;
  const auto crp_stats = core::clustering_stats(
      core::smf_cluster(*client_maps_, config), client_maps_->size());

  const std::vector<HostId> nodes{world_->dns_servers().begin(),
                                  world_->dns_servers().end()};
  const auto asn_stats = core::clustering_stats(
      asn::asn_cluster(world_->topology(), nodes, nullptr), nodes.size());

  // In this small fixture CRP may merge nodes into fewer, larger
  // clusters; the robust cross-scale claim is node coverage (the
  // cluster-count comparison is exercised at Table I scale by
  // bench/table1_clustering).
  EXPECT_GT(crp_stats.nodes_clustered, asn_stats.nodes_clustered);
  EXPECT_GT(crp_stats.fraction_clustered,
            1.5 * asn_stats.fraction_clustered);
}

TEST_F(EndToEndTest, MeridianAndCrpComparable) {
  // Figs. 4-5's qualitative claim: CRP's accuracy is comparable to
  // Meridian's despite issuing zero probes.
  meridian::MeridianConfig mconfig;
  mconfig.seed = 9;
  meridian::MeridianOverlay overlay{
      world_->oracle(),
      {world_->candidates().begin(), world_->candidates().end()},
      mconfig};
  overlay.bootstrap(SimTime::epoch());

  std::vector<std::size_t> meridian_choice;
  Rng rng{4};
  for (HostId client : world_->dns_servers()) {
    const auto result = overlay.closest_node(
        overlay.random_entry(rng), client, SimTime::epoch() + Hours(25));
    const auto it =
        std::find(world_->candidates().begin(), world_->candidates().end(),
                  result.selected);
    meridian_choice.push_back(static_cast<std::size_t>(
        it - world_->candidates().begin()));
  }
  const auto meridian_outcomes =
      eval::evaluate_fixed_selection(*gt_, meridian_choice);
  const auto crp_outcomes = eval::evaluate_crp_selection(
      *gt_, *client_maps_, *candidate_maps_, /*top_k=*/1);

  double meridian_mean = 0.0;
  double crp_mean = 0.0;
  for (const auto& o : meridian_outcomes) meridian_mean += o.rtt_ms;
  for (const auto& o : crp_outcomes) crp_mean += o.rtt_ms;
  meridian_mean /= static_cast<double>(meridian_outcomes.size());
  crp_mean /= static_cast<double>(crp_outcomes.size());

  // "Comparable": within a factor of two of each other, both far below
  // the random-selection mean.
  EXPECT_LT(crp_mean, meridian_mean * 2.0);
  double random_mean = 0.0;
  for (std::size_t c = 0; c < gt_->num_clients(); ++c) {
    for (std::size_t k = 0; k < gt_->num_candidates(); ++k) {
      random_mean += gt_->rtt_ms(c, k);
    }
  }
  random_mean /= static_cast<double>(gt_->num_clients() *
                                     gt_->num_candidates());
  EXPECT_LT(crp_mean, random_mean * 0.5);
  EXPECT_LT(meridian_mean, random_mean * 0.5);

  // And CRP did it without a single probe of its own; Meridian paid.
  EXPECT_GT(overlay.total_probes(), 1000u);
}

TEST_F(EndToEndTest, CdnLoadIsBoundedPerNodePerRound) {
  // O(1) scalability: total CDN queries == participants x rounds x names
  // (within rounding of the staggered start).
  const std::size_t participants = world_->participants().size();
  const std::size_t names = world_->catalog().size();
  const std::size_t rounds = 145;  // 24h at 10 min + 1
  const std::size_t upper = participants * rounds * names;
  EXPECT_LE(world_->cdn_queries_served(), upper + participants * names);
  EXPECT_GE(world_->cdn_queries_served(), upper / 2);
}

}  // namespace
}  // namespace crp
