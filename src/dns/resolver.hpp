// Caching recursive resolver.
//
// Each DNS-server host in the experiment runs one of these. It follows
// CNAME chains across zones, caches by (name, type) honouring TTLs against
// the simulated clock, and accounts the latency of every upstream
// round-trip via the latency oracle — so a King measurement through the
// resolver sees realistic turnaround times, and a CRP probe sees the CDN's
// 20-second TTLs expire between probes.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/ipv4.hpp"
#include "common/time.hpp"
#include "dns/record.hpp"
#include "dns/zone.hpp"
#include "netsim/latency_model.hpp"
#include "sim/fault_plan.hpp"

namespace crp::dns {

/// Outcome of a recursive resolution.
struct ResolveResult {
  Rcode rcode = Rcode::kServFail;
  /// Final A-record addresses (empty on failure).
  std::vector<Ipv4> addresses;
  /// Every record learned along the CNAME chain, in resolution order.
  std::vector<ResourceRecord> chain;
  /// Simulated time spent: sum of RTTs to every authoritative queried,
  /// plus timeout/backoff charges for attempts that were lost.
  Duration elapsed;
  /// Authoritative round-trips attempted (0 = fully answered from
  /// cache); lost attempts count — they are load the resolver created.
  int upstream_queries = 0;
  /// True when the failure was fault-induced (every upstream attempt
  /// lost, or the resolver host itself was down) rather than a DNS-level
  /// answer. Always false with no fault plan armed.
  bool timed_out = false;

  [[nodiscard]] bool ok() const {
    return rcode == Rcode::kNoError && !addresses.empty();
  }
};

struct ResolverConfig {
  /// Upper bound on cached (name, type) entries; 0 disables caching.
  std::size_t max_cache_entries = 10'000;
  /// Maximum CNAME chain length before giving up (loop protection).
  int max_chain = 8;
  /// Fixed per-upstream-query processing overhead.
  Duration processing_overhead = Micros(200);

  // --- fault handling (exercised only when a sim::FaultPlan is armed;
  // without one, attempt 0 always succeeds and none of this runs) ---
  /// Upstream attempts beyond the first before a lookup gives up and
  /// answers SERVFAIL.
  int max_retries = 2;
  /// Simulated time charged for an attempt whose answer never arrived.
  Duration query_timeout = Millis(400);
  /// Backoff before retry k (1-based) is retry_backoff * 2^(k-1).
  Duration retry_backoff = Millis(200);
};

/// Caching recursive resolver bound to one host.
class RecursiveResolver {
 public:
  /// `registry` and `oracle` must outlive the resolver. `oracle` may be
  /// null in unit tests (upstream RTTs then count as zero).
  RecursiveResolver(HostId host, const ZoneRegistry& registry,
                    const netsim::LatencyOracle* oracle,
                    ResolverConfig config = {});

  /// Resolves `name` to A records at sim time `now`.
  ResolveResult resolve(const Name& name, SimTime now);

  [[nodiscard]] HostId host() const { return host_; }
  [[nodiscard]] Ipv4 address() const;

  // --- fault injection (DESIGN.md §7) ---
  /// Arms deterministic faults: upstream-host outages and per-attempt
  /// query timeouts come from `plan`; link outages and packet loss come
  /// from the oracle's armed plan (if any). `plan` must outlive the
  /// resolver; nullptr disarms. Fault-induced SERVFAILs are never
  /// negative-cached — the outage must clear the instant the plan says
  /// so, not a TTL later.
  void set_fault_plan(const sim::FaultPlan* plan) { faults_ = plan; }
  [[nodiscard]] const sim::FaultPlan* fault_plan() const { return faults_; }

  // --- cache statistics / management ---
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  [[nodiscard]] std::size_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::size_t cache_misses() const { return cache_misses_; }
  [[nodiscard]] std::size_t queries_sent() const { return queries_sent_; }
  /// Upstream attempts re-sent after a lost one (fault path only).
  [[nodiscard]] std::size_t retries() const { return retries_; }
  /// Lookups abandoned with SERVFAIL after every attempt was lost.
  [[nodiscard]] std::size_t timeouts() const { return timeouts_; }
  /// Resolutions refused because the resolver host itself was down.
  [[nodiscard]] std::size_t outage_refusals() const {
    return outage_refusals_;
  }
  void flush_cache() { cache_.clear(); }

 private:
  struct CacheKey {
    Name name;
    RecordType type;
    friend bool operator==(const CacheKey&, const CacheKey&) = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const noexcept {
      return std::hash<Name>{}(k.name) ^
             (static_cast<std::size_t>(k.type) * 0x9e3779b97f4a7c15ULL);
    }
  };
  struct CacheEntry {
    std::vector<ResourceRecord> records;
    Rcode rcode = Rcode::kNoError;
    SimTime expires;
  };

  /// Looks up (name, type), from cache or upstream. Appends the RTT cost
  /// of any upstream query to `result.elapsed`.
  std::optional<std::vector<ResourceRecord>> lookup(const Name& name,
                                                    RecordType type,
                                                    SimTime now,
                                                    ResolveResult& result);

  void cache_store(const Name& name, RecordType type,
                   std::vector<ResourceRecord> records, Rcode rcode,
                   SimTime now);

  /// Was upstream attempt `attempt` at `now` lost? Pure function of the
  /// armed plans — bit-identical for any replay order or thread count.
  [[nodiscard]] bool attempt_lost(HostId upstream, SimTime now,
                                  int attempt) const;

  HostId host_;
  const ZoneRegistry* registry_;
  const netsim::LatencyOracle* oracle_;
  const sim::FaultPlan* faults_ = nullptr;
  ResolverConfig config_;
  std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;
  std::size_t cache_hits_ = 0;
  std::size_t cache_misses_ = 0;
  std::size_t queries_sent_ = 0;
  std::size_t retries_ = 0;
  std::size_t timeouts_ = 0;
  std::size_t outage_refusals_ = 0;
};

}  // namespace crp::dns
