file(REMOVE_RECURSE
  "CMakeFiles/crp_coord.dir/binning.cpp.o"
  "CMakeFiles/crp_coord.dir/binning.cpp.o.d"
  "CMakeFiles/crp_coord.dir/gnp.cpp.o"
  "CMakeFiles/crp_coord.dir/gnp.cpp.o.d"
  "CMakeFiles/crp_coord.dir/vivaldi.cpp.o"
  "CMakeFiles/crp_coord.dir/vivaldi.cpp.o.d"
  "libcrp_coord.a"
  "libcrp_coord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_coord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
