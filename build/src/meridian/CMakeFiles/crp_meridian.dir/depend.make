# Empty dependencies file for crp_meridian.
# This may be replaced when dependencies are built.
