// SMF clustering throughput: center-indexed SmfClusterer vs the dense
// scores-of-the-whole-corpus baseline, at three corpus sizes, plus the
// tiled parallel evaluate_clusters against its sequential (0-thread)
// form.
//
// For each corpus the bench reports SMF nodes/sec for both paths, the
// candidate rows the center index actually touched (vs nodes x corpus
// for dense scoring), and evaluate_clusters clusters/sec — and, because
// speed means nothing if the answers drift, cross-checks that every
// variant produces the identical clustering/qualities (DESIGN.md §6).
// Feeds the BENCH_clustering.json snapshot; target: the center-indexed
// path ≥3x dense at the largest corpus (the win is algorithmic — work
// scales with centers, not corpus — so it holds on a single core).
//
// CRP_BENCH_SCALE=tiny|small shrinks the corpus sweep for CI smoke runs.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/cluster_quality.hpp"
#include "core/clustering.hpp"
#include "core/similarity_engine.hpp"

namespace {

using namespace crp;

std::vector<std::size_t> corpus_sweep() {
  const char* env = std::getenv("CRP_BENCH_SCALE");
  const std::string scale = env == nullptr ? "" : env;
  if (scale == "tiny") return {60, 120, 240};
  if (scale == "small") return {500, 1000, 2000};
  return {1000, 4000, 10000};
}

// The service-shaped corpus micro_service uses: ~16 entries per map over
// a 2000-replica id space, so posting lists are long enough that dense
// scoring really does touch most of the corpus per query.
std::vector<core::RatioMap> make_corpus(std::size_t n) {
  Rng rng{hash_combine({71, n})};
  constexpr std::uint32_t kIdSpace = 2000;
  std::vector<core::RatioMap> maps;
  maps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<core::RatioMap::Entry> entries;
    for (int j = 0; j < 16; ++j) {
      entries.emplace_back(ReplicaId{static_cast<std::uint32_t>(
                               rng.uniform_int(0, kIdSpace - 1))},
                           rng.uniform(0.05, 1.0));
    }
    maps.push_back(core::RatioMap::from_ratios(entries));
  }
  return maps;
}

bool same_clustering(const core::Clustering& a, const core::Clustering& b) {
  if (a.assignment != b.assignment) return false;
  if (a.clusters.size() != b.clusters.size()) return false;
  for (std::size_t c = 0; c < a.clusters.size(); ++c) {
    if (a.clusters[c].center != b.clusters[c].center) return false;
    if (a.clusters[c].members != b.clusters[c].members) return false;
  }
  return true;
}

bool same_qualities(const std::vector<core::ClusterQuality>& a,
                    const std::vector<core::ClusterQuality>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].cluster_index != b[i].cluster_index || a[i].size != b[i].size ||
        a[i].diameter_ms != b[i].diameter_ms ||
        a[i].avg_intra_ms != b[i].avg_intra_ms ||
        a[i].avg_inter_ms != b[i].avg_inter_ms) {
      return false;
    }
  }
  return true;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  const std::vector<std::size_t> sweep = corpus_sweep();
  const std::size_t hw = std::thread::hardware_concurrency();
  std::printf("micro_clustering: hardware threads %zu\n", hw);

  core::SmfConfig config;  // paper defaults: cosine, t = 0.1, second pass
  bool ok = true;
  for (const std::size_t n : sweep) {
    const auto maps = make_corpus(n);
    const core::SimilarityEngine engine{maps, config.metric};
    std::printf("corpus: %zu nodes, %zu distinct replicas\n", n,
                engine.distinct_replicas());

    // Dense baseline: every node scored against the whole corpus.
    auto start = std::chrono::steady_clock::now();
    const core::Clustering dense = core::smf_cluster_dense(engine, config);
    const double dense_wall = seconds_since(start);
    std::printf(
        "  %-24s %9.0f nodes/s  wall %7.3f s  (%zu clusters)\n",
        "smf dense", n / dense_wall, dense_wall, dense.clusters.size());

    // Center-indexed: nodes scored against the founded centers only.
    core::SmfClusterer clusterer;
    start = std::chrono::steady_clock::now();
    const core::Clustering indexed = clusterer.run(engine, config);
    const double indexed_wall = seconds_since(start);
    const core::SmfRunStats& stats = clusterer.last_stats();
    std::printf(
        "  %-24s %9.0f nodes/s  wall %7.3f s  speedup %5.2fx  "
        "touched %.0f rows/query (dense scores %zu)\n",
        "smf center-indexed", n / indexed_wall, indexed_wall,
        dense_wall / indexed_wall,
        stats.center_queries == 0
            ? 0.0
            : static_cast<double>(stats.maps_touched) /
                  static_cast<double>(stats.center_queries),
        n);
    if (!same_clustering(indexed, dense)) {
      std::printf("  clustering MISMATCH: center-indexed vs dense\n");
      ok = false;
    }

    // The per-pair reference is O(n^2) merges — cross-check it where it
    // is affordable and trust the shared-score argument above it.
    if (n <= 1000) {
      const core::Clustering reference =
          core::smf_cluster_reference(maps, config);
      if (!same_clustering(indexed, reference)) {
        std::printf("  clustering MISMATCH: center-indexed vs reference\n");
        ok = false;
      }
    }

    // evaluate_clusters: synthetic line distances (cheap + thread-safe),
    // sequential inline pool vs the parallel shared pool.
    Rng rng{hash_combine({72, n})};
    std::vector<double> pos(n);
    for (double& x : pos) x = rng.uniform(0.0, 1000.0);
    const core::DistanceFn rtt = [&pos](std::size_t i, std::size_t j) {
      return std::abs(pos[i] - pos[j]);
    };
    ThreadPool inline_pool{0};
    start = std::chrono::steady_clock::now();
    const auto seq_quality = core::evaluate_clusters(dense, rtt, &inline_pool);
    const double seq_wall = seconds_since(start);
    start = std::chrono::steady_clock::now();
    const auto par_quality = core::evaluate_clusters(dense, rtt);
    const double par_wall = seconds_since(start);
    std::printf(
        "  %-24s %9.0f clusters/s  wall %7.3f s\n"
        "  %-24s %9.0f clusters/s  wall %7.3f s  speedup %5.2fx\n",
        "evaluate (sequential)", seq_quality.size() / seq_wall, seq_wall,
        "evaluate (parallel)", par_quality.size() / par_wall, par_wall,
        seq_wall / par_wall);
    if (!same_qualities(seq_quality, par_quality)) {
      std::printf("  quality MISMATCH: parallel vs sequential\n");
      ok = false;
    }
  }

  if (!ok) {
    std::fprintf(stderr, "micro_clustering: FAIL — variants disagree\n");
    return 1;
  }
  return 0;
}
