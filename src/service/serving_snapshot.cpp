#include "service/serving_snapshot.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/top_k.hpp"
#include "service/serving_detail.hpp"

namespace crp::service {

using serving_detail::ScoredRef;
using serving_detail::better_ref;

std::size_t ServingSnapshot::find(const std::string& node_id) const {
  const std::vector<std::uint32_t>& index = *by_id_;
  const std::vector<SlotRec>& slots = *slots_;
  const auto it = std::lower_bound(
      index.begin(), index.end(), node_id,
      [&slots](std::uint32_t slot, const std::string& id) {
        return slots[slot].id < id;
      });
  if (it == index.end() || slots[*it].id != node_id) return npos;
  return *it;
}

std::vector<std::string> ServingSnapshot::live_nodes(SimTime now) const {
  // by_id_ is sorted lexicographically, so the output comes out in the
  // contract's order with no sort — identical to the mutable path's
  // walk-then-sort.
  std::vector<std::string> nodes;
  nodes.reserve(by_id_->size());
  for (const std::uint32_t slot : *by_id_) {
    if (live_at(slot, now)) nodes.push_back((*slots_)[slot].id);
  }
  return nodes;
}

void ServingSnapshot::similarity_scores(std::size_t client_slot,
                                        std::span<double> out) const {
  std::size_t touched = 0;
  engine_->scores_of(client_slot, out, &touched);
  counters_->similarity_queries.add();
  counters_->maps_touched.add(touched);
}

std::vector<RankedNode> ServingSnapshot::closest(
    const std::string& client, std::span<const std::string> candidates,
    std::size_t k, SimTime now) const {
  counters_->queries_served.add();
  const std::size_t client_slot = find(client);
  if (client_slot == npos || !live_at(client_slot, now)) return {};
  // Mirrors the mutable path: one subset read over the live candidates'
  // slots, vetted in caller order (order is irrelevant to the ranking —
  // the total order below absorbs it — but keeping it identical keeps
  // the subset query's touched accounting identical too).
  std::vector<const std::string*> vetted;
  std::vector<std::size_t> slots;
  vetted.reserve(candidates.size());
  slots.reserve(candidates.size());
  for (const std::string& candidate : candidates) {
    if (candidate == client) continue;
    const std::size_t slot = find(candidate);
    if (slot == npos || !live_at(slot, now)) continue;
    vetted.push_back(&candidate);
    slots.push_back(slot);
  }
  std::vector<double> scores(slots.size());
  std::size_t touched = 0;
  engine_->scores_of_subset(client_slot, slots, scores, &touched);
  counters_->similarity_queries.add();
  counters_->maps_touched.add(touched);
  BoundedTopK<ScoredRef, decltype(&better_ref)> heap(k, &better_ref);
  for (std::size_t i = 0; i < vetted.size(); ++i) {
    heap.offer(ScoredRef{vetted[i], scores[i]});
  }
  return serving_detail::materialize<RankedNode>(heap.take_sorted());
}

std::vector<RankedNode> ServingSnapshot::closest_any(
    const std::string& client, std::size_t k, SimTime now) const {
  counters_->queries_served.add();
  const std::size_t client_slot = find(client);
  if (client_slot == npos || !live_at(client_slot, now)) return {};
  std::vector<double> scores(engine_->size());
  similarity_scores(client_slot, scores);
  // The mutable path walks its unordered_map; this walks the sorted
  // node table. Same candidate set, and the heap's total order makes
  // the result offer-order-independent — byte-identical either way.
  BoundedTopK<ScoredRef, decltype(&better_ref)> heap(k, &better_ref);
  for (const std::uint32_t slot : *by_id_) {
    if (slot == client_slot || !live_at(slot, now)) continue;
    heap.offer(ScoredRef{&(*slots_)[slot].id, scores[slot]});
  }
  return serving_detail::materialize<RankedNode>(heap.take_sorted());
}

TieredAnswer ServingSnapshot::closest_any_tiered(const std::string& client,
                                                 std::size_t k,
                                                 SimTime now) const {
  return closest_tiered_impl(client, {}, /*any=*/true, k, now);
}

TieredAnswer ServingSnapshot::closest_tiered(
    const std::string& client, std::span<const std::string> candidates,
    std::size_t k, SimTime now) const {
  return closest_tiered_impl(client, candidates, /*any=*/false, k, now);
}

TieredAnswer ServingSnapshot::closest_tiered_impl(
    const std::string& client, std::span<const std::string> candidates,
    bool any, std::size_t k, SimTime now) const {
  counters_->queries_served.add();
  TieredAnswer out;
  const std::size_t client_slot = find(client);
  if (client_slot == npos) {
    out.reason = DegradedReason::kUnknownClient;
    counters_->refused_queries.add();
    return out;
  }
  const bool fresh = live_at(client_slot, now);
  if (!fresh && !stale_usable_at(client_slot, now)) {
    out.reason = DegradedReason::kClientExpired;
    counters_->refused_queries.add();
    return out;
  }

  const auto usable = [&](std::size_t slot) {
    return live_at(slot, now) || (!fresh && stale_usable_at(slot, now));
  };

  BoundedTopK<ScoredRef, decltype(&better_ref)> heap(k, &better_ref);
  if (any) {
    std::vector<double> scores(engine_->size());
    similarity_scores(client_slot, scores);
    for (const std::uint32_t slot : *by_id_) {
      if (slot == client_slot || !usable(slot)) continue;
      heap.offer(ScoredRef{&(*slots_)[slot].id, scores[slot]});
    }
  } else {
    std::vector<const std::string*> vetted;
    std::vector<std::size_t> slots;
    vetted.reserve(candidates.size());
    slots.reserve(candidates.size());
    for (const std::string& candidate : candidates) {
      if (candidate == client) continue;
      const std::size_t slot = find(candidate);
      if (slot == npos || !usable(slot)) continue;
      vetted.push_back(&candidate);
      slots.push_back(slot);
    }
    std::vector<double> scores(slots.size());
    std::size_t touched = 0;
    engine_->scores_of_subset(client_slot, slots, scores, &touched);
    counters_->similarity_queries.add();
    counters_->maps_touched.add(touched);
    for (std::size_t i = 0; i < vetted.size(); ++i) {
      heap.offer(ScoredRef{vetted[i], scores[i]});
    }
  }
  out.ranked = serving_detail::materialize<RankedNode>(heap.take_sorted());
  if (out.ranked.empty()) {
    out.tier = AnswerTier::kRefused;
    out.reason = DegradedReason::kNoUsableCandidates;
    counters_->refused_queries.add();
    return out;
  }
  out.tier = fresh ? AnswerTier::kFresh : AnswerTier::kStale;
  out.reason = fresh ? DegradedReason::kNone : DegradedReason::kStaleClient;
  (fresh ? counters_->fresh_answers : counters_->stale_answers).add();
  return out;
}

std::vector<RankedNode> ServingSnapshot::top_k(const core::RatioMap& query,
                                               std::size_t k,
                                               SimTime now) const {
  counters_->queries_served.add();
  std::vector<double> scores(engine_->size());
  std::size_t touched = 0;
  engine_->scores(query, scores, &touched);
  counters_->similarity_queries.add();
  counters_->maps_touched.add(touched);
  BoundedTopK<ScoredRef, decltype(&better_ref)> heap(k, &better_ref);
  for (const std::uint32_t slot : *by_id_) {
    if (!live_at(slot, now)) continue;
    heap.offer(ScoredRef{&(*slots_)[slot].id, scores[slot]});
  }
  return serving_detail::materialize<RankedNode>(heap.take_sorted());
}

std::optional<ServingSnapshot::Resident> ServingSnapshot::resident(
    const std::string& node_id, SimTime now) const {
  const std::size_t slot = find(node_id);
  if (slot == npos) return std::nullopt;
  Resident r;
  r.slot = slot;
  r.row = engine_->row_view(slot);
  r.live = live_at(slot, now);
  r.stale_usable = stale_usable_at(slot, now);
  return r;
}

std::vector<ServingSnapshot::Vetted> ServingSnapshot::vet_candidates(
    std::span<const std::string> candidates, bool stale_band,
    SimTime now) const {
  std::vector<Vetted> vetted;
  vetted.reserve(candidates.size());
  for (const std::string& candidate : candidates) {
    const std::size_t slot = find(candidate);
    if (slot == npos) continue;
    if (!live_at(slot, now) && !(stale_band && stale_usable_at(slot, now))) {
      continue;
    }
    vetted.push_back(Vetted{&candidate, slot});
  }
  return vetted;
}

std::vector<RankedNode> ServingSnapshot::partial_closest_any(
    const core::RowView& client, std::size_t exclude_slot, bool stale_band,
    std::size_t k, SimTime now) const {
  std::vector<double> scores(engine_->size());
  std::size_t touched = 0;
  engine_->scores(client, scores, &touched);
  counters_->similarity_queries.add();
  counters_->maps_touched.add(touched);
  BoundedTopK<ScoredRef, decltype(&better_ref)> heap(k, &better_ref);
  for (const std::uint32_t slot : *by_id_) {
    if (slot == exclude_slot) continue;
    if (!live_at(slot, now) && !(stale_band && stale_usable_at(slot, now))) {
      continue;
    }
    heap.offer(ScoredRef{&(*slots_)[slot].id, scores[slot]});
  }
  return serving_detail::materialize<RankedNode>(heap.take_sorted());
}

std::vector<RankedNode> ServingSnapshot::partial_closest(
    const core::RowView& client, std::size_t exclude_slot,
    std::span<const Vetted> candidates, std::size_t k) const {
  if (candidates.empty()) return {};
  std::vector<double> scores(engine_->size());
  std::size_t touched = 0;
  engine_->scores(client, scores, &touched);
  counters_->similarity_queries.add();
  counters_->maps_touched.add(touched);
  BoundedTopK<ScoredRef, decltype(&better_ref)> heap(k, &better_ref);
  for (const Vetted& candidate : candidates) {
    if (candidate.slot == exclude_slot) continue;
    heap.offer(ScoredRef{candidate.id, scores[candidate.slot]});
  }
  return serving_detail::materialize<RankedNode>(heap.take_sorted());
}

std::vector<RankedNode> ServingSnapshot::partial_top_k(
    const core::RatioMap& query, std::size_t k, SimTime now) const {
  std::vector<double> scores(engine_->size());
  std::size_t touched = 0;
  engine_->scores(query, scores, &touched);
  counters_->similarity_queries.add();
  counters_->maps_touched.add(touched);
  BoundedTopK<ScoredRef, decltype(&better_ref)> heap(k, &better_ref);
  for (const std::uint32_t slot : *by_id_) {
    if (!live_at(slot, now)) continue;
    heap.offer(ScoredRef{&(*slots_)[slot].id, scores[slot]});
  }
  return serving_detail::materialize<RankedNode>(heap.take_sorted());
}

std::vector<std::vector<RankedNode>> ServingSnapshot::partial_closest_batch(
    std::span<const ExternalClient> clients, std::size_t self_shard,
    std::size_t k, SimTime now) const {
  std::vector<std::vector<RankedNode>> out(clients.size());
  if (clients.empty()) return out;
  // One usable-node sweep and one score buffer serve every client of
  // the batch — the partial twin of closest_batch's shared liveness
  // snapshot. (Partial reads never widen to the stale band: the batch
  // path, like the unsharded one, serves fresh clients only.)
  std::vector<NodeRef> nodes;
  nodes.reserve(by_id_->size());
  for (const std::uint32_t slot : *by_id_) {
    if (live_at(slot, now)) {
      nodes.push_back(NodeRef{&(*slots_)[slot].id, slot});
    }
  }
  std::vector<double> scores(engine_->size());
  std::uint64_t touched_total = 0;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    std::size_t touched = 0;
    engine_->scores(clients[i].row, scores, &touched);
    touched_total += touched;
    const std::size_t exclude =
        clients[i].owner == self_shard ? clients[i].slot : npos;
    out[i] = rank_batch_row(nodes, exclude, scores, k);
  }
  counters_->similarity_queries.add(clients.size());
  counters_->maps_touched.add(touched_total);
  return out;
}

std::vector<std::vector<RankedNode>> ServingSnapshot::partial_closest_batch(
    std::span<const ExternalClient> clients, std::size_t self_shard,
    std::span<const Vetted> candidates, std::size_t k) const {
  std::vector<std::vector<RankedNode>> out(clients.size());
  if (clients.empty() || candidates.empty()) return out;
  std::vector<NodeRef> nodes;
  nodes.reserve(candidates.size());
  for (const Vetted& candidate : candidates) {
    nodes.push_back(NodeRef{candidate.id, candidate.slot});
  }
  std::vector<double> scores(engine_->size());
  std::uint64_t touched_total = 0;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    std::size_t touched = 0;
    engine_->scores(clients[i].row, scores, &touched);
    touched_total += touched;
    const std::size_t exclude =
        clients[i].owner == self_shard ? clients[i].slot : npos;
    out[i] = rank_batch_row(nodes, exclude, scores, k);
  }
  counters_->similarity_queries.add(clients.size());
  counters_->maps_touched.add(touched_total);
  return out;
}

void ServingSnapshot::count_outcome(AnswerTier tier) const {
  switch (tier) {
    case AnswerTier::kFresh:
      counters_->fresh_answers.add();
      break;
    case AnswerTier::kStale:
      counters_->stale_answers.add();
      break;
    case AnswerTier::kRefused:
      counters_->refused_queries.add();
      break;
  }
}

std::vector<RankedNode> ServingSnapshot::rank_batch_row(
    std::span<const NodeRef> nodes, std::size_t client_slot,
    std::span<const double> scores, std::size_t k) const {
  BoundedTopK<ScoredRef, decltype(&better_ref)> heap(k, &better_ref);
  for (const NodeRef& node : nodes) {
    if (node.slot == client_slot) continue;
    heap.offer(ScoredRef{node.id, scores[node.slot]});
  }
  return serving_detail::materialize<RankedNode>(heap.take_sorted());
}

std::vector<std::vector<RankedNode>> ServingSnapshot::closest_batch(
    std::span<const std::string> clients, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  counters_->queries_served.add(clients.size());
  std::vector<std::vector<RankedNode>> out(clients.size());
  if (clients.empty()) return out;

  std::vector<NodeRef> nodes;
  nodes.reserve(by_id_->size());
  for (const std::uint32_t slot : *by_id_) {
    if (live_at(slot, now)) {
      nodes.push_back(NodeRef{&(*slots_)[slot].id, slot});
    }
  }

  std::vector<std::size_t> rows;
  std::vector<std::size_t> result_at;
  rows.reserve(clients.size());
  result_at.reserve(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const std::size_t slot = find(clients[i]);
    if (slot == npos || !live_at(slot, now)) continue;
    rows.push_back(slot);
    result_at.push_back(i);
  }
  if (rows.empty()) return out;

  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  FlatMatrix<double> scores;
  std::uint64_t touched = 0;
  engine_->scores_of_batch(rows, scores, &p, &touched);
  counters_->similarity_queries.add(rows.size());
  counters_->maps_touched.add(touched);

  p.parallel_for(0, rows.size(), [&](std::size_t j) {
    out[result_at[j]] = rank_batch_row(nodes, rows[j], scores.row(j), k);
  });
  return out;
}

std::vector<std::vector<RankedNode>> ServingSnapshot::closest_batch(
    std::span<const std::string> clients,
    std::span<const std::string> candidates, std::size_t k, SimTime now,
    ThreadPool* pool) const {
  counters_->queries_served.add(clients.size());
  std::vector<std::vector<RankedNode>> out(clients.size());
  if (clients.empty()) return out;

  std::vector<NodeRef> nodes;
  nodes.reserve(candidates.size());
  for (const std::string& candidate : candidates) {
    const std::size_t slot = find(candidate);
    if (slot == npos || !live_at(slot, now)) continue;
    nodes.push_back(NodeRef{&candidate, slot});
  }

  std::vector<std::size_t> rows;
  std::vector<std::size_t> result_at;
  rows.reserve(clients.size());
  result_at.reserve(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const std::size_t slot = find(clients[i]);
    if (slot == npos || !live_at(slot, now)) continue;
    rows.push_back(slot);
    result_at.push_back(i);
  }
  if (rows.empty()) return out;

  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  FlatMatrix<double> scores;
  std::uint64_t touched = 0;
  engine_->scores_of_batch(rows, scores, &p, &touched);
  counters_->similarity_queries.add(rows.size());
  counters_->maps_touched.add(touched);

  p.parallel_for(0, rows.size(), [&](std::size_t j) {
    out[result_at[j]] = rank_batch_row(nodes, rows[j], scores.row(j), k);
  });
  return out;
}

std::vector<std::string> ServingSnapshot::same_cluster(
    const std::string& node_id, SimTime now) const {
  counters_->queries_served.add();
  const std::size_t slot = find(node_id);
  if (slot == npos || !live_at(slot, now)) return {};
  if (clustering_ == nullptr) return {};
  const auto& cluster =
      clustering_->clusters[clustering_->assignment[slot]];
  std::vector<std::string> out;
  for (std::size_t member : cluster.members) {
    if (member == slot) continue;
    const SlotRec& rec = (*slots_)[member];
    if (rec.id.empty() || !live_at(member, now)) continue;
    out.push_back(rec.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::unordered_map<std::string, std::size_t>
ServingSnapshot::cluster_assignment(SimTime now) const {
  counters_->queries_served.add();
  std::unordered_map<std::string, std::size_t> out;
  if (clustering_ == nullptr) return out;
  for (std::size_t slot = 0; slot < slots_->size(); ++slot) {
    const SlotRec& rec = (*slots_)[slot];
    if (rec.id.empty() || !live_at(slot, now)) continue;
    out[rec.id] = clustering_->assignment[slot];
  }
  return out;
}

std::vector<std::string> ServingSnapshot::diverse_set(
    std::size_t n, SimTime now, std::uint64_t seed) const {
  counters_->queries_served.add();
  if (clustering_ == nullptr) return {};

  struct Candidate {
    std::string id;
    std::size_t live_members = 0;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(clustering_->clusters.size());
  for (const auto& cluster : clustering_->clusters) {
    Candidate c;
    bool center_live = false;
    std::string smallest;
    for (std::size_t member : cluster.members) {
      const SlotRec& rec = (*slots_)[member];
      if (rec.id.empty() || !live_at(member, now)) continue;
      ++c.live_members;
      if (member == cluster.center) center_live = true;
      if (smallest.empty() || rec.id < smallest) smallest = rec.id;
    }
    if (c.live_members == 0) continue;
    c.id = center_live ? (*slots_)[cluster.center].id : smallest;
    candidates.push_back(std::move(c));
  }

  std::vector<std::size_t> cluster_order(candidates.size());
  for (std::size_t i = 0; i < cluster_order.size(); ++i) {
    cluster_order[i] = i;
  }
  Rng rng{hash_combine({seed, stable_hash("diverse-set")})};
  rng.shuffle(cluster_order);
  std::stable_sort(cluster_order.begin(), cluster_order.end(),
                   [&candidates](std::size_t a, std::size_t b) {
                     return candidates[a].live_members >
                            candidates[b].live_members;
                   });

  std::vector<std::string> out;
  for (std::size_t ci : cluster_order) {
    if (out.size() == n) break;
    out.push_back(candidates[ci].id);
  }
  return out;
}

}  // namespace crp::service
