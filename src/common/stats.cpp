#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace crp {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const { return min_; }

double OnlineStats::max() const { return max_; }

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double percentile(std::span<const double> values, double q) {
  std::vector<double> copy{values.begin(), values.end()};
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, q);
}

double median(std::span<const double> values) {
  return percentile(values, 0.5);
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted{values.begin(), values.end()};
  std::sort(sorted.begin(), sorted.end());
  OnlineStats os;
  for (double v : sorted) os.add(v);
  s.mean = os.mean();
  s.stddev = os.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = percentile_sorted(sorted, 0.25);
  s.median = percentile_sorted(sorted, 0.50);
  s.p75 = percentile_sorted(sorted, 0.75);
  s.p90 = percentile_sorted(sorted, 0.90);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::quantile(double q) const { return percentile_sorted(sorted_, q); }

std::vector<Cdf::Point> Cdf::curve(std::size_t points) const {
  std::vector<Point> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = points == 1
                         ? 1.0
                         : static_cast<double>(i) /
                               static_cast<double>(points - 1);
    out.push_back(Point{quantile(q), q});
  }
  return out;
}

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (edges_.size() < 2) {
    throw std::invalid_argument{"Histogram: need at least two edges"};
  }
  if (!std::is_sorted(edges_.begin(), edges_.end()) ||
      std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end()) {
    throw std::invalid_argument{"Histogram: edges must strictly increase"};
  }
  counts_.assign(edges_.size() - 1, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < edges_.front()) {
    ++underflow_;
    return;
  }
  if (x >= edges_.back()) {
    ++overflow_;
    return;
  }
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  const auto idx = static_cast<std::size_t>(it - edges_.begin()) - 1;
  ++counts_[idx];
}

std::size_t Histogram::bucket(std::size_t i) const { return counts_.at(i); }

std::size_t Histogram::num_buckets() const { return counts_.size(); }

std::optional<double> pearson(std::span<const double> xs,
                              std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return std::nullopt;
  const auto n = static_cast<double>(xs.size());
  const double mx = std::accumulate(xs.begin(), xs.end(), 0.0) / n;
  const double my = std::accumulate(ys.begin(), ys.end(), 0.0) / n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return std::nullopt;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
// Average ranks (ties share the mean of the ranks they span).
std::vector<double> ranks_of(std::span<const double> xs) {
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(xs.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) /
                            2.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}
}  // namespace

std::optional<double> spearman(std::span<const double> xs,
                               std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return std::nullopt;
  const auto rx = ranks_of(xs);
  const auto ry = ranks_of(ys);
  return pearson(rx, ry);
}

}  // namespace crp
