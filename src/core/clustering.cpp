#include "core/clustering.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/similarity_engine.hpp"

namespace crp::core {

std::vector<std::size_t> Clustering::multi_member_clusters() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    if (clusters[i].members.size() >= 2) out.push_back(i);
  }
  return out;
}

std::size_t Clustering::nodes_clustered() const {
  std::size_t count = 0;
  for (const Cluster& c : clusters) {
    if (c.members.size() >= 2) count += c.members.size();
  }
  return count;
}

namespace {

/// SMF given a per-node similarity source. `node_scores(node, sims)`
/// fills `sims` with the node's similarity to every other node; the rest
/// of the algorithm is shared between the engine-backed and reference
/// paths, which guarantees their outputs can differ only if the scores
/// do (and the engine's scores are bit-identical to similarity()'s).
template <typename StrengthFn, typename ScoresFn>
Clustering smf_cluster_impl(std::size_t n, const SmfConfig& config,
                            const StrengthFn& strength,
                            const ScoresFn& node_scores) {
  Clustering out;
  out.assignment.assign(n, 0);

  // Processing order: strongest mappings first (or random for ablation).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng{hash_combine({config.seed, stable_hash("smf")})};
  if (config.seeding == SmfConfig::Seeding::kStrongestFirst) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return strength(a) > strength(b);
                     });
  } else {
    rng.shuffle(order);
  }

  std::vector<double> sims(n, 0.0);

  // Pass 1: each node joins its most similar existing center if above
  // threshold, otherwise founds a new cluster with itself as center.
  for (std::size_t node : order) {
    node_scores(node, sims);
    std::size_t best_cluster = 0;
    double best_sim = -1.0;
    for (std::size_t c = 0; c < out.clusters.size(); ++c) {
      const double s = sims[out.clusters[c].center];
      if (s > best_sim) {
        best_sim = s;
        best_cluster = c;
      }
    }
    if (!out.clusters.empty() && best_sim >= config.threshold) {
      out.clusters[best_cluster].members.push_back(node);
      out.assignment[node] = best_cluster;
    } else {
      Clustering::Cluster cluster;
      cluster.center = node;
      cluster.members.push_back(node);
      out.clusters.push_back(std::move(cluster));
      out.assignment[node] = out.clusters.size() - 1;
    }
  }

  // Pass 2 (optional): random singletons become centers; other singletons
  // may join them. This rescues nodes that arrived before any compatible
  // center existed.
  if (config.second_pass) {
    std::vector<std::size_t> singles;
    for (std::size_t c = 0; c < out.clusters.size(); ++c) {
      if (out.clusters[c].members.size() == 1) singles.push_back(c);
    }
    rng.shuffle(singles);
    std::vector<bool> absorbed(out.clusters.size(), false);
    for (std::size_t ci : singles) {
      if (absorbed[ci]) continue;
      const std::size_t center = out.clusters[ci].center;
      node_scores(center, sims);
      for (std::size_t cj : singles) {
        if (cj == ci || absorbed[cj]) continue;
        const std::size_t other = out.clusters[cj].center;
        if (sims[other] >= config.threshold) {
          out.clusters[ci].members.push_back(other);
          out.assignment[other] = ci;
          absorbed[cj] = true;
        }
      }
    }
    // Compact away absorbed (now empty) clusters.
    Clustering compacted;
    compacted.assignment.assign(n, 0);
    for (std::size_t c = 0; c < out.clusters.size(); ++c) {
      if (absorbed[c]) continue;
      const std::size_t new_index = compacted.clusters.size();
      for (std::size_t node : out.clusters[c].members) {
        compacted.assignment[node] = new_index;
      }
      compacted.clusters.push_back(std::move(out.clusters[c]));
    }
    out = std::move(compacted);
  }
  return out;
}

}  // namespace

Clustering smf_cluster(const SimilarityEngine& engine,
                       const SmfConfig& config) {
  if (engine.kind() != config.metric) {
    throw std::invalid_argument{
        "smf_cluster: engine metric disagrees with config.metric"};
  }
  return smf_cluster_impl(
      engine.size(), config,
      [&engine](std::size_t i) { return engine.strongest_mapping(i); },
      [&engine](std::size_t node, std::vector<double>& sims) {
        engine.scores_of(node, sims);
      });
}

Clustering smf_cluster(std::span<const RatioMap> maps,
                       const SmfConfig& config) {
  const SimilarityEngine engine{maps, config.metric};
  return smf_cluster(engine, config);
}

Clustering smf_cluster_reference(std::span<const RatioMap> maps,
                                 const SmfConfig& config) {
  return smf_cluster_impl(
      maps.size(), config,
      [&maps](std::size_t i) { return maps[i].strongest_mapping(); },
      [&maps, &config](std::size_t node, std::vector<double>& sims) {
        for (std::size_t i = 0; i < maps.size(); ++i) {
          sims[i] = similarity(config.metric, maps[node], maps[i]);
        }
      });
}

ClusteringStats clustering_stats(const Clustering& clustering,
                                 std::size_t total_nodes) {
  ClusteringStats stats;
  stats.total_nodes = total_nodes;
  std::vector<double> sizes;
  for (const Clustering::Cluster& c : clustering.clusters) {
    if (c.members.size() < 2) continue;
    sizes.push_back(static_cast<double>(c.members.size()));
    stats.nodes_clustered += c.members.size();
    stats.max_size = std::max(stats.max_size, c.members.size());
  }
  stats.num_clusters = sizes.size();
  if (total_nodes > 0) {
    stats.fraction_clustered = static_cast<double>(stats.nodes_clustered) /
                               static_cast<double>(total_nodes);
  }
  if (!sizes.empty()) {
    stats.mean_size = std::accumulate(sizes.begin(), sizes.end(), 0.0) /
                      static_cast<double>(sizes.size());
    stats.median_size = median(sizes);
  }
  return stats;
}

}  // namespace crp::core
