// Table I: summary statistics for clusters formed by CRP (at thresholds
// t = 0.01, 0.1, 0.5) and by ASN-based clustering, over 177 broadly
// distributed DNS servers.
#include <iostream>

#include "clustering_util.hpp"
#include "common/table.hpp"
#include "eval/series.hpp"

int main() {
  using namespace crp;
  constexpr std::uint64_t kSeed = 177;

  eval::print_banner(std::cout,
                     "Cluster summary: CRP thresholds vs ASN baseline",
                     "Table I (ICDCS 2008)", kSeed);

  bench::ClusteringExperiment exp{kSeed};

  TextTable table;
  table.header({"technique", "# nodes clustered", "% nodes clustered",
                "# of clusters", "[mean, median, max] cluster size"});

  const auto add_row = [&table, &exp](const std::string& label,
                                      const core::Clustering& clustering) {
    const auto stats =
        core::clustering_stats(clustering, exp.nodes.size());
    table.row({label, fmt(stats.nodes_clustered),
               fmt_pct(stats.fraction_clustered),
               fmt(stats.num_clusters),
               "[" + fmt(stats.mean_size) + ", " + fmt(stats.median_size) +
                   ", " + fmt(stats.max_size) + "]"});
  };

  for (double t : {0.01, 0.1, 0.5}) {
    add_row("CRP (t=" + fmt(t, t < 0.1 ? 2 : 1) + ")",
            exp.crp_clustering(t));
  }
  add_row("ASN", exp.asn_clustering());

  std::cout << "\n" << table.render();
  std::cout <<
      "\npaper expectations: lower t clusters more nodes into larger "
      "clusters;\nCRP clusters ~3x the nodes ASN does and finds >2x the "
      "clusters, because it\ncan group nearby nodes that sit in "
      "different ASes.\n";
  return 0;
}
