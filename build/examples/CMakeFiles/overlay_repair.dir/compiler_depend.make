# Empty compiler generated dependencies file for overlay_repair.
# This may be replaced when dependencies are built.
