file(REMOVE_RECURSE
  "../bench/ablation_similarity"
  "../bench/ablation_similarity.pdb"
  "CMakeFiles/ablation_similarity.dir/ablation_similarity.cpp.o"
  "CMakeFiles/ablation_similarity.dir/ablation_similarity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
